#include "control/experiment.h"

#include <algorithm>
#include <cmath>

#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "model/moody.h"
#include "model/optimizer.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aic::control {
namespace {

using model::IntervalParams;
namespace on = obs::names;

/// Sub-steps the workload in tick-sized chunks so the fault observer sees
/// sub-second arrival times (the hot-page grouping threshold T_g starts at
/// 10 ms).
void fine_step(workload::Workload& w, mem::AddressSpace& space, double dt,
               double& now) {
  const double quantum = workload::SyntheticWorkload::kTick;
  double remaining = dt;
  while (remaining > 1e-12) {
    const double chunk = std::min(quantum, remaining);
    w.step(space, chunk);
    now += chunk;
    remaining -= chunk;
  }
}

/// Shared state of one failure-free run with concurrent incremental+delta
/// checkpointing (AIC and SIC differ only in the decision rule).
class ConcurrentRun {
 public:
  ConcurrentRun(workload::SpecBenchmark benchmark,
                const ExperimentConfig& config)
      : config_(config),
        workload_(workload::make_spec_workload(benchmark,
                                               config.workload_scale)),
        sampler_(config.sampler) {
    ckpt::CheckpointChain::Config chain_cfg;
    chain_cfg.full_period = config.full_period;
    chain_cfg.delta_compress = true;
    chain_cfg.correcting = config.correcting_codec;
    chain_cfg.compress_workers = config.compress_workers;
    chain_cfg.obs = config.obs;
    chain_ = std::make_unique<ckpt::CheckpointChain>(chain_cfg);

    workload_->initialize(space_);
    space_.set_fault_observer([this](mem::PageId id) {
      sampler_.on_fault(id, now_, space_.page_bytes(id));
    });
    // Initial full checkpoint before any work. Like the paper's testbed,
    // the full image is staged to all levels before timed execution
    // starts, so interval 1 has no previous concurrent segment to rerun
    // (c2 = c3 = c1) — but recovering to it still costs the full-image
    // read times.
    ckpt::CaptureStats st = chain_->capture(space_, workload_->cpu_state(),
                                            0.0);
    const auto full = config_.costs.raw_params(st.uncompressed_bytes);
    prev_params_.c1 = full.c1;
    prev_params_.c2 = full.c1;
    prev_params_.c3 = full.c1;
    prev_params_.r1 = full.r1;
    prev_params_.r2 = full.r2;
    prev_params_.r3 = full.r3;
    halt_time_ += full.c1;
    space_.protect_all();
    sampler_.reset_interval();
  }

  bool finished() const { return workload_->finished(); }
  double now() const { return now_; }
  double interval_elapsed() const { return now_ - interval_start_; }
  /// The paper's pipelining constraint: no new L1 until the previous
  /// checkpoint's L3 transfer has finished on the checkpointing core.
  bool core_free() const { return now_ >= core_free_time_ - 1e-9; }

  /// Advances one decision period and returns the metrics at the decision
  /// point.
  predictor::BaseMetrics advance() {
    fine_step(*workload_, space_, config_.decision_period, now_);
    predictor::BaseMetrics m;
    m.dirty_pages = double(space_.dirty_page_count());
    m.elapsed = interval_elapsed();
    const auto jd_di = sampler_.compute(space_);
    m.jd = jd_di.mean_jd;
    m.di = jd_di.mean_di;
    metric_overhead_ += config_.costs.metric_seconds_per_page *
                        double(sampler_.stats().samples);
    return m;
  }

  /// Takes a checkpoint now and records the interval.
  IntervalRecord checkpoint(const predictor::BaseMetrics& metrics) {
    ckpt::CaptureStats st =
        chain_->capture(space_, workload_->cpu_state(), now_);
    IntervalRecord rec;
    rec.start_time = interval_start_;
    rec.w = std::max(now_ - interval_start_, 1e-6);
    if (st.kind == ckpt::CheckpointKind::kFull) {
      rec.params = config_.costs.raw_params(st.uncompressed_bytes);
      rec.delta_latency = 0.0;
      rec.delta_bytes = st.file_bytes;
    } else {
      rec.params = config_.costs.delta_params(st.uncompressed_bytes,
                                              st.file_bytes,
                                              st.delta_work_units);
      rec.delta_latency = config_.costs.delta_latency(st.delta_work_units);
      rec.delta_bytes = st.file_bytes;
    }
    rec.uncompressed_bytes = st.uncompressed_bytes;
    rec.dirty_pages = st.pages_written;
    rec.metrics = metrics;
    intervals_.push_back(rec);
    if (config_.obs != nullptr) {
      config_.obs->trace.span(
          obs::TimeDomain::kVirtual, on::kCatCkpt, on::kEvInterval,
          interval_start_, now_, 0,
          {{"w", rec.w},
           {"c1", rec.params.c1},
           {"c3", rec.params.c3},
           {"dirty_pages", double(rec.dirty_pages)}});
    }

    halt_time_ += rec.params.c1;  // the local write blocks the process
    // The checkpointing core is now occupied for the concurrent transfer
    // (the process computes through it, so app time tracks wall time).
    core_free_time_ = now_ + (rec.params.c3 - rec.params.c1);
    sampler_.adapt();
    sampler_.reset_interval();
    space_.protect_all();
    interval_start_ = now_;
    prev_params_ = rec.params;
    return rec;
  }

  /// Eq. (1): NET^2 = sum of expected interval times over the base work,
  /// using each interval's measured parameters (and its predecessor's for
  /// the old-checkpoint recovery states). The tail segment after the last
  /// checkpoint carries no checkpoint cost. Numerator and denominator both
  /// include the concurrent-segment work, so the ratio stays consistent.
  ExperimentResult finish(Scheme scheme) {
    ExperimentResult res;
    res.scheme = scheme;
    res.workload = workload_->name();
    res.base_time = workload_->base_time();
    res.control_overhead = decision_overhead_ + metric_overhead_;
    res.exec_time = workload_->progress() + halt_time_ + res.control_overhead;
    res.intervals = intervals_;

    double total_expected = 0.0;
    double total_work = 0.0;
    // The first interval's predecessor is the initial full checkpoint.
    IntervalParams prev = initial_prev_;
    for (const IntervalRecord& rec : res.intervals) {
      total_expected += model::expected_interval_time_adaptive(
          config_.system, rec.w, rec.params, prev);
      total_work +=
          model::interval_work_adaptive(config_.system, rec.w, rec.params);
      prev = rec.params;
    }
    const double tail = now_ - interval_start_;
    // The tail runs unprotected: failures throw it back to the last
    // checkpoint (prev) — model that exposure rather than counting the
    // tail as free time.
    total_expected += model::expected_tail_time(config_.system, tail, prev);
    total_work += tail;
    res.net2 = total_work > 0 ? total_expected / total_work : 1.0;
    return res;
  }

  void add_decision_overhead(double seconds) {
    decision_overhead_ += seconds;
  }
  void set_last_predicted_c3(double c3) {
    if (!intervals_.empty()) intervals_.back().predicted_c3 = c3;
  }
  const IntervalParams& prev_params() const { return prev_params_; }
  void remember_initial_prev() { initial_prev_ = prev_params_; }

  const ExperimentConfig& config() const { return config_; }

 private:
  ExperimentConfig config_;
  std::unique_ptr<workload::SyntheticWorkload> workload_;
  mem::AddressSpace space_;
  predictor::HotPageSampler sampler_;
  std::unique_ptr<ckpt::CheckpointChain> chain_;

  double now_ = 0.0;
  double interval_start_ = 0.0;
  double core_free_time_ = 0.0;
  double halt_time_ = 0.0;
  double decision_overhead_ = 0.0;
  double metric_overhead_ = 0.0;
  IntervalParams prev_params_;
  IntervalParams initial_prev_;
  std::vector<IntervalRecord> intervals_;
};

/// First-principles estimate of the checkpoint latency variables from the
/// lightweight metrics alone — used until the stepwise-regression model has
/// its four seed samples, so AIC is adaptive from the very first decision.
/// The sampler buffers each hot page's pre-write (last-checkpoint) content,
/// so JD is a direct estimate of the per-page delta fraction:
///   ds ~ DP * page * JD,  dl ~ compressor passes over the dirty bytes,
///   c1 ~ dirty bytes / local bandwidth.
IntervalParams estimate_params(const predictor::BaseMetrics& m,
                               const CostModel& costs) {
  const double dirty_bytes = m.dirty_pages * double(kPageSize);
  const double ds = dirty_bytes * std::max(m.jd, 0.02);
  const double dl = 2.5 * dirty_bytes / costs.compress_bps;
  IntervalParams p;
  p.c1 = dirty_bytes / costs.local_bps;
  p.c2 = p.c1 + dl + ds / costs.b2_bps;
  p.c3 = p.c1 + dl + ds / costs.b3_bps;
  p.r1 = p.c1;
  p.r2 = p.c2;
  p.r3 = p.c3;
  return p;
}

ExperimentResult run_aic(workload::SpecBenchmark benchmark,
                         const ExperimentConfig& config) {
  ConcurrentRun run(benchmark, config);
  run.remember_initial_prev();
  predictor::AicPredictor predictor;
  predictor.set_obs(config.obs);

  obs::Counter* m_evals = nullptr;
  obs::Counter* m_takes = nullptr;
  obs::Counter* m_boundary = nullptr;
  obs::Histogram* m_newton_iters = nullptr;
  obs::Histogram* m_w_star = nullptr;
  if (obs::Hub* hub = config.obs) {
    obs::MetricsRegistry& m = hub->metrics;
    m_evals = m.counter(on::kDeciderEvaluations);
    m_takes = m.counter(on::kDeciderTakes);
    m_boundary = m.counter(on::kDeciderBoundaryPicks);
    m_newton_iters = m.histogram(
        on::kDeciderNewtonIters, obs::Histogram::linear_buckets(0, 200, 20));
    m_w_star = m.histogram(on::kDeciderWStar,
                           obs::Histogram::exponential_buckets(1.0, 2.0, 18));
  }

  // Trailing window of predicted c3 values for dip gating: once the span
  // condition w_L* <= elapsed holds, AIC still waits for a *locally cheap*
  // moment (Section II.B's motivation — the desirable point of time is the
  // one with the smallest checkpoint), unless it has been waiting so long
  // that any moment is better than more exposure.
  std::vector<double> c3_window;
  const std::size_t kWindow = 40;        // decisions (~seconds), > a phase cycle
  const double kDipSlack = 1.1;          // "cheap" = within 10% of the dip
  const double kStarvationFactor = 3.0;  // fire anyway past 3x w_L*
  // Valley detection: the predicted cost declines while a consolidation
  // phase runs and turns back up when the next burst starts; firing on the
  // first upturn after a sustained decline lands within one decision
  // period of the local minimum — even when the minimum's absolute value
  // drifts upward over the interval (scratch accumulates).
  double prev_c3 = -1.0;
  int decline_streak = 0;

  // Exponential moving average of the regression model's relative error on
  // ds, fed by the per-checkpoint measurements the paper sends back "for
  // its model update". While the model's error is high (sparse or
  // degenerate training points — short runs give it only a handful), the
  // decider falls back to the direct metric estimate; the regression keeps
  // learning in the background either way.
  double model_err_ema = 1.0;
  const double kModelTrustError = 0.35;

  while (!run.finished()) {
    const predictor::BaseMetrics metrics = run.advance();
    bool take = false;
    double predicted_c3 = 0.0;
    IntervalParams cur = estimate_params(metrics, config.costs);
    if (predictor.warmed_up() && model_err_ema < kModelTrustError) {
      const double c1 =
          predictor.predict(predictor::Target::kC1, metrics);
      const double dl =
          predictor.predict(predictor::Target::kDeltaLatency, metrics);
      const double ds =
          predictor.predict(predictor::Target::kDeltaSize, metrics);
      cur.c1 = c1;
      cur.c2 = c1 + dl + ds / config.costs.b2_bps;
      cur.c3 = c1 + dl + ds / config.costs.b3_bps;
      cur.r1 = cur.c1;
      cur.r2 = cur.c2;
      cur.r3 = cur.c3;
    }
    predicted_c3 = cur.c3;
    {
      const IntervalParams prev = run.prev_params();
      auto objective = [&](double w) {
        return model::net2_adaptive(config.system, w, cur, prev);
      };
      model::EvtDiag diag;
      const auto best = model::extreme_value_minimum(
          objective, config.min_w, config.max_w,
          std::max(run.interval_elapsed(), config.min_w), &diag);
      run.add_decision_overhead(config.costs.decision_seconds);
      if (config.obs != nullptr) {
        m_evals->add();
        m_newton_iters->observe(double(diag.newton_iters));
        m_w_star->observe(best.x);
        if (diag.used_boundary) m_boundary->add();
      }

      c3_window.push_back(cur.c3);
      if (c3_window.size() > kWindow)
        c3_window.erase(c3_window.begin());
      const double window_min =
          *std::min_element(c3_window.begin(), c3_window.end());
      double window_mean = 0.0;
      for (double v : c3_window) window_mean += v;
      window_mean /= double(c3_window.size());

      const bool span_reached = best.x <= run.interval_elapsed();
      const bool upturn =
          decline_streak >= 3 && prev_c3 >= 0.0 && cur.c3 > prev_c3;
      if (prev_c3 >= 0.0 && cur.c3 < prev_c3) {
        ++decline_streak;
      } else if (cur.c3 > prev_c3) {
        decline_streak = 0;
      }
      prev_c3 = cur.c3;
      // "Cheap moment": back at the trailing window's dip, clearly below
      // its typical cost, or just past a local valley (upturn after a
      // sustained decline).
      const bool at_dip = cur.c3 <= kDipSlack * window_min ||
                          cur.c3 <= 0.7 * window_mean || upturn;
      const bool starved =
          run.interval_elapsed() > kStarvationFactor * best.x;
      take = span_reached && (at_dip || starved);
      if (config.decision_hook) {
        config.decision_hook(DecisionTrace{
            run.now(), run.interval_elapsed(), best.x, cur.c3, span_reached,
            at_dip, starved, run.core_free(), take && run.core_free()});
      }
      if (config.obs != nullptr) {
        config.obs->trace.instant(
            obs::TimeDomain::kVirtual, on::kCatDecider, on::kEvDecision,
            run.now(), 0,
            {{"w_star", best.x},
             {"c3", cur.c3},
             {"take", take && run.core_free() ? 1.0 : 0.0},
             {"newton_iters", double(diag.newton_iters)}});
      }
    }
    take = take && run.core_free();
    // No checkpoint is forced at job completion: the job is done and the
    // tail segment simply runs out.
    if (take && !run.finished()) {
      if (m_takes != nullptr) m_takes->add();
      const IntervalRecord rec = run.checkpoint(metrics);
      run.set_last_predicted_c3(predicted_c3);
      if (predictor.warmed_up() && rec.delta_bytes > 0) {
        const double model_ds =
            predictor.predict(predictor::Target::kDeltaSize, metrics);
        const double rel_err =
            std::abs(model_ds - double(rec.delta_bytes)) /
            double(rec.delta_bytes);
        model_err_ema = 0.5 * model_err_ema + 0.5 * std::min(rel_err, 2.0);
      }
      predictor.observe(metrics, rec.params.c1, rec.delta_latency,
                        double(rec.delta_bytes));
    }
  }
  return run.finish(Scheme::kAic);
}

ExperimentResult run_sic(workload::SpecBenchmark benchmark,
                         const ExperimentConfig& config) {
  // Profiling pre-pass for the average incremental checkpoint latencies
  // ("Both Moody and SIC require the average checkpoint latency
  // beforehand").
  const ProfiledCosts profiled = profile_workload(benchmark, config);

  // Static optimal work span from the L2L3 concurrent model.
  model::SystemProfile sys = config.system;
  sys.c = {profiled.incremental.c1, profiled.incremental.c2,
           profiled.incremental.c3};
  sys.r = sys.c;
  const auto best = model::minimize_scalar(
      [&](double w) {
        return model::net2_static(model::LevelCombo::kL2L3, sys, w);
      },
      config.min_w, config.max_w, 32, 50);
  const double w_star = best.x;

  ConcurrentRun run(benchmark, config);
  run.remember_initial_prev();
  while (!run.finished()) {
    const predictor::BaseMetrics metrics = run.advance();
    if (run.interval_elapsed() >= w_star && run.core_free() &&
        !run.finished()) {
      run.checkpoint(metrics);
    }
  }
  return run.finish(Scheme::kSic);
}

ExperimentResult run_moody(workload::SpecBenchmark benchmark,
                           const ExperimentConfig& config) {
  const ProfiledCosts profiled = profile_workload(benchmark, config);
  model::SystemProfile sys = config.system;
  sys.c = {profiled.full.c1, profiled.full.c2, profiled.full.c3};
  sys.r = sys.c;
  const model::MoodyResult schedule = model::optimize_moody(sys);

  // Execute: periodic *blocking full* checkpoints at the schedule's w,
  // level per the hierarchical pattern.
  auto wl = workload::make_spec_workload(benchmark, config.workload_scale);
  mem::AddressSpace space;
  wl->initialize(space);
  ckpt::CheckpointChain::Config chain_cfg;
  chain_cfg.full_period = 1;  // every checkpoint is full under Moody
  chain_cfg.delta_compress = false;
  ckpt::CheckpointChain chain(chain_cfg);

  ExperimentResult res;
  res.scheme = Scheme::kMoody;
  res.workload = wl->name();
  res.base_time = wl->base_time();

  double now = 0.0;
  double halt = 0.0;
  int slot = 0;
  const int period_slots = (schedule.n1 + 1) * (schedule.n2 + 1);
  while (!wl->finished()) {
    fine_step(*wl, space, schedule.w, now);
    ++slot;
    int level = 1;
    if (slot % period_slots == 0) {
      level = 3;
    } else if (slot % (schedule.n1 + 1) == 0) {
      level = 2;
    }
    ckpt::CaptureStats st = chain.capture(space, wl->cpu_state(), now);
    space.protect_all();
    const IntervalParams p = config.costs.raw_params(st.uncompressed_bytes);
    const double block = level == 1 ? p.c1 : (level == 2 ? p.c2 : p.c3);
    halt += block;  // blocking: the process waits out the full transfer

    IntervalRecord rec;
    rec.start_time = now - schedule.w;
    rec.w = schedule.w;
    rec.params = p;
    rec.uncompressed_bytes = st.uncompressed_bytes;
    rec.dirty_pages = st.pages_written;
    res.intervals.push_back(rec);
  }
  res.exec_time = wl->progress() + halt;
  // Moody's NET^2 comes from the Moody model at the profiled costs, as the
  // paper does with the released Moody code.
  res.net2 = model::moody_net2(sys, schedule.w, schedule.n1, schedule.n2);
  return res;
}

}  // namespace

const char* to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kAic:
      return "AIC";
    case Scheme::kSic:
      return "SIC";
    case Scheme::kMoody:
      return "Moody";
  }
  return "?";
}

double ExperimentResult::mean_delta_bytes() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : intervals) {
    if (r.delta_latency > 0.0 || r.delta_bytes > 0) {
      sum += double(r.delta_bytes);
      ++n;
    }
  }
  return n ? sum / double(n) : 0.0;
}

double ExperimentResult::mean_delta_latency() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : intervals) {
    sum += r.delta_latency;
    ++n;
  }
  return n ? sum / double(n) : 0.0;
}

double ExperimentResult::mean_compression_ratio() const {
  double in = 0.0, out = 0.0;
  for (const auto& r : intervals) {
    in += double(r.uncompressed_bytes);
    out += double(r.delta_bytes);
  }
  return in > 0 ? out / in : 1.0;
}

ExperimentResult run_experiment(Scheme scheme,
                                workload::SpecBenchmark benchmark,
                                const ExperimentConfig& config) {
  switch (scheme) {
    case Scheme::kAic:
      return run_aic(benchmark, config);
    case Scheme::kSic:
      return run_sic(benchmark, config);
    case Scheme::kMoody:
      return run_moody(benchmark, config);
  }
  AIC_CHECK(false);
  return {};
}

ProfiledCosts profile_workload(workload::SpecBenchmark benchmark,
                               const ExperimentConfig& config,
                               double probe_interval) {
  AIC_CHECK(probe_interval > 0.0);
  auto wl = workload::make_spec_workload(benchmark, config.workload_scale);
  mem::AddressSpace space;
  wl->initialize(space);
  ckpt::CheckpointChain::Config chain_cfg;
  chain_cfg.full_period = 0;
  chain_cfg.delta_compress = true;
  chain_cfg.correcting = config.correcting_codec;
  chain_cfg.compress_workers = config.compress_workers;
  ckpt::CheckpointChain chain(chain_cfg);
  chain.capture(space, wl->cpu_state(), 0.0);
  space.protect_all();

  double now = 0.0;
  double sum_c1 = 0, sum_c2 = 0, sum_c3 = 0;
  double sum_fc1 = 0, sum_fc2 = 0, sum_fc3 = 0;
  int n = 0;
  // Probe at most 1/4 of the run (cheap, like the paper's pre-profiling).
  const int probes =
      std::max(2, int(wl->base_time() / probe_interval / 4.0));
  for (int i = 0; i < probes && !wl->finished(); ++i) {
    fine_step(*wl, space, probe_interval, now);
    ckpt::CaptureStats st = chain.capture(space, wl->cpu_state(), now);
    space.protect_all();
    const auto inc = config.costs.delta_params(
        st.uncompressed_bytes, st.file_bytes, st.delta_work_units);
    sum_c1 += inc.c1;
    sum_c2 += inc.c2;
    sum_c3 += inc.c3;
    // A full checkpoint at this moment would move the whole footprint.
    const auto full = config.costs.raw_params(space.footprint_bytes());
    sum_fc1 += full.c1;
    sum_fc2 += full.c2;
    sum_fc3 += full.c3;
    ++n;
  }
  AIC_CHECK(n > 0);
  ProfiledCosts out;
  out.incremental.c1 = sum_c1 / n;
  out.incremental.c2 = sum_c2 / n;
  out.incremental.c3 = sum_c3 / n;
  out.incremental.r1 = out.incremental.c1;
  out.incremental.r2 = out.incremental.c2;
  out.incremental.r3 = out.incremental.c3;
  out.full.c1 = sum_fc1 / n;
  out.full.c2 = sum_fc2 / n;
  out.full.c3 = sum_fc3 / n;
  out.full.r1 = out.full.c1;
  out.full.r2 = out.full.c2;
  out.full.r3 = out.full.c3;
  return out;
}

}  // namespace aic::control
