// Failure-free experiment runs of the three checkpointing schemes over a
// workload, producing per-interval latency traces and the NET^2 metric via
// Eq. (1) — exactly how the paper's testbed evaluation works (Section V:
// L2/L3 are simulated from measured sizes and predefined bandwidths, and
// "NET^2 outcomes of AIC and SIC are calculated by Eq. (1)").
//
//   AIC   — adaptive: every decision period, gather {DP, t, JD, DI},
//           predict (c1, dl, ds), find the local-optimal span w_L* by
//           Newton–Raphson + boundary comparison, checkpoint when the
//           elapsed span exceeds it. Online predictor, no profiling.
//   SIC   — static: a profiling pre-pass measures average checkpoint
//           latencies, the L2L3 concurrent model picks a fixed w*, the run
//           checkpoints every w* seconds (incremental + delta, concurrent).
//   Moody — multi-level blocking baseline: full checkpoints on the
//           (w, n1, n2) schedule from optimize_moody with profiled sizes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "control/cost_model.h"
#include "model/system_profile.h"
#include "predictor/hot_page_sampler.h"
#include "predictor/predictor.h"
#include "workload/workload.h"

namespace aic::obs {
struct Hub;
}  // namespace aic::obs

namespace aic::control {

enum class Scheme { kAic, kSic, kMoody };
const char* to_string(Scheme scheme);

/// One AIC decider evaluation (diagnostics; see
/// ExperimentConfig::decision_hook).
struct DecisionTrace {
  double time = 0.0;          // virtual app time
  double elapsed = 0.0;       // current interval span
  double w_star = 0.0;        // local-optimal span from the EVT search
  double c3_pred = 0.0;       // predicted c3 if checkpointing now
  bool span_reached = false;
  bool at_dip = false;
  bool starved = false;
  bool core_free = false;
  bool take = false;
};

struct ExperimentConfig {
  /// Failure rates used by the analytic models (the run itself is
  /// failure-free; failures enter through Eq. (1)).
  model::SystemProfile system = model::SystemProfile::coastal();
  CostModel costs;
  /// AIC decision period (paper: one second).
  double decision_period = 1.0;
  /// Bound the restart chain with a periodic full checkpoint; 0 (the
  /// default, matching the paper's short-run evaluation) keeps only the
  /// initial full — a mid-run full would monopolize the remote link for
  /// the footprint/B3 transfer time.
  std::uint32_t full_period = 0;
  predictor::SamplerConfig sampler;
  /// Delta-compression worker threads for the concurrent schemes' chains
  /// (ckpt::CheckpointChain::Config::compress_workers): 0 = auto
  /// (hardware_concurrency() - 1), 1 = serial. Results are byte-identical
  /// at any setting; only host wall-clock changes.
  unsigned compress_workers = 0;
  /// Delta-compress with the one-pass correcting coder (cdelta records,
  /// whole-page move detection, checkpoint format v3) instead of the
  /// greedy per-page coder — the Table 3 "correcting" compressor row.
  bool correcting_codec = false;
  /// Work-span search range for the deciders.
  double min_w = 1.0;
  double max_w = 1e5;
  /// Workload scale factor (footprint & page rates).
  double workload_scale = 1.0;
  /// Optional per-decision diagnostics callback (AIC runs only).
  std::function<void(const DecisionTrace&)> decision_hook;
  /// Optional observability hub: interval spans, decider metrics and
  /// decision instants, predictor residuals, plus everything the
  /// checkpoint chain and compression pipeline emit. nullptr = disabled.
  obs::Hub* obs = nullptr;
};

/// One checkpoint interval as executed.
struct IntervalRecord {
  double start_time = 0.0;  // virtual app time at interval start
  double w = 0.0;           // work executed before the checkpoint
  model::IntervalParams params;  // measured latencies of this checkpoint
  double delta_latency = 0.0;    // dl
  std::uint64_t delta_bytes = 0; // ds
  std::uint64_t uncompressed_bytes = 0;
  std::uint64_t dirty_pages = 0;
  predictor::BaseMetrics metrics;  // metrics at the decision point
  /// Predicted-vs-measured for diagnostics (AIC only; 0 otherwise).
  double predicted_c3 = 0.0;
};

struct ExperimentResult {
  Scheme scheme{};
  std::string workload;
  double base_time = 0.0;
  /// Wall-clock of the failure-free run on the computation core: base work
  /// + c1 halts + decider/metric overhead (the Table 3 execution time).
  double exec_time = 0.0;
  /// Decider + metric overhead alone (seconds).
  double control_overhead = 0.0;
  double net2 = 0.0;  // Eq. (1)
  std::vector<IntervalRecord> intervals;

  double overhead_fraction() const {
    return base_time > 0 ? exec_time / base_time - 1.0 : 0.0;
  }
  double mean_delta_bytes() const;
  double mean_delta_latency() const;
  double mean_compression_ratio() const;
};

/// Runs the given scheme on a fresh instance of `benchmark`.
ExperimentResult run_experiment(Scheme scheme,
                                workload::SpecBenchmark benchmark,
                                const ExperimentConfig& config);

/// SIC/Moody profiling pre-pass: runs the workload once with a fixed probe
/// interval and returns the average measured latency parameters for
/// (a) delta-compressed incremental checkpoints and (b) full checkpoints.
struct ProfiledCosts {
  model::IntervalParams incremental;  // averages for SIC's model
  model::IntervalParams full;         // averages for Moody's model
};
ProfiledCosts profile_workload(workload::SpecBenchmark benchmark,
                               const ExperimentConfig& config,
                               double probe_interval = 10.0);

}  // namespace aic::control
