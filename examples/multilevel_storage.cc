// Multi-level storage walkthrough: place checkpoints on local disk, a
// RAID-5 partner group, and remote storage; kill things level by level and
// watch recovery come from the cheapest surviving copy — including a RAID
// parity reconstruction and a full reseed after a catastrophic loss.
//
//   build/examples/example_multilevel_storage
#include <cstdio>

#include "aic/aic.h"

using namespace aic;

int main() {
  storage::MultiLevelStore store;
  Rng rng(2026);

  // A small job writing checkpoints through the store.
  mem::AddressSpace space;
  space.allocate_range(0, 256);
  for (mem::PageId id = 0; id < 256; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::CheckpointChain chain;
  chain.capture(space, {}, 0.0);
  auto t0 = store.put_checkpoint(chain.files().back());
  std::printf("full checkpoint placed: local %.3fs, raid %.3fs, remote %.3fs\n",
              t0.local, t0.raid, t0.remote);
  space.protect_all();

  for (int i = 1; i <= 4; ++i) {
    Bytes edit(128);
    for (auto& x : edit) x = std::uint8_t(rng());
    space.write(rng.uniform_u64(256), rng.uniform_u64(kPageSize - 128), edit);
    chain.capture(space, {}, double(i));
    store.put_checkpoint(chain.files().back());
    space.protect_all();
  }
  const mem::Snapshot truth = mem::Snapshot::capture(space);
  delta::PageAlignedCompressor pa;
  auto verify = [&](const storage::MultiLevelStore::Recovery& rec) {
    auto restored = ckpt::RestartEngine::restore(rec.chain, pa);
    return truth.equals_space(restored.memory.materialize());
  };

  auto r1 = store.recover();
  std::printf("healthy:        recover from L%d in %.4fs — %s\n",
              r1->level_used, r1->read_seconds,
              verify(*r1) ? "byte-exact" : "CORRUPT");

  store.apply_failure(2, rng);
  auto r2 = store.recover();
  std::printf("level-2 fail:   recover from L%d in %.4fs — %s "
              "(local disk lost; RAID member rebuilt from parity)\n",
              r2->level_used, r2->read_seconds,
              verify(*r2) ? "byte-exact" : "CORRUPT");

  store.apply_failure(3, rng);
  auto r3 = store.recover();
  std::printf("level-3 fail:   recover from L%d in %.4fs — %s "
              "(two RAID members down: only the remote copy survives)\n",
              r3->level_used, r3->read_seconds,
              verify(*r3) ? "byte-exact" : "CORRUPT");

  store.repair_raid_group();
  const auto copied = store.reseed_from_remote();
  auto r4 = store.recover();
  std::printf("after reseed:   %.1f KiB copied down; recover from L%d — %s\n",
              double(copied) / 1024.0, r4->level_used,
              verify(*r4) ? "byte-exact" : "CORRUPT");

  return (verify(*r1) && verify(*r2) && verify(*r3) && verify(*r4)) ? 0 : 1;
}
