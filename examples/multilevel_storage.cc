// Multi-level storage walkthrough: place checkpoints on local disk, a
// RAID-5 partner group, and remote storage; kill things level by level and
// watch recovery come from the cheapest surviving copy — including a RAID
// parity reconstruction and a full reseed after a catastrophic loss.
//
// Act two kills a node *mid-drain*: an L3 transfer is interrupted between
// two chunks, the staged partial stays invisible to recover(), and the
// resumed drain finishes from the last acked chunk, byte-identical.
//
//   build/examples/example_multilevel_storage
#include <cstdio>

#include "aic/aic.h"

using namespace aic;

namespace {

// A node dies while its checkpoint is still draining to remote storage.
// Demonstrates the transfer-engine guarantees: staging is invisible until
// the atomic commit, an interrupt keeps the acked-byte watermark, and the
// resumed drain produces the identical object.
bool mid_transfer_failure_walkthrough() {
  storage::MultiLevelConfig cfg;
  cfg.remote_bps = 64.0 * 1024;        // slow L3 uplink: the drain lingers
  cfg.xfer.chunk_bytes = 64 * 1024;    // 1 chunk/s on the wire
  storage::MultiLevelStore store(cfg);
  Rng rng(7);

  mem::AddressSpace space;
  space.allocate_range(0, 128);
  for (mem::PageId id = 0; id < 128; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::CheckpointChain chain;
  chain.capture(space, {}, 0.0);
  store.put_checkpoint(chain.files().back());  // full: committed everywhere
  space.protect_all();

  // Dirty enough incompressible pages that the incremental spans several
  // chunks — the interrupt must land between two of them.
  for (mem::PageId id = 0; id < 80; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  chain.capture(space, {}, 1.0);
  const Bytes expected = chain.files().back().serialize();

  // Queue the incremental's drains and stop the clock mid-way through the
  // remote transfer: some chunks acked, the rest still to come.
  const auto ticket = store.put_checkpoint_async(chain.files().back());
  store.xfer().run_until(store.xfer().now() +
                         0.5 * double(expected.size()) / cfg.remote_bps);
  const auto& rec = store.xfer().record(*ticket.remote);
  std::printf("mid-drain:      remote acked %llu/%llu bytes; "
              "%zu staged partial(s); visible remote copy: %s\n",
              (unsigned long long)rec.acked_bytes,
              (unsigned long long)rec.total_bytes,
              store.remote_staging().partial_count(),
              store.remote().get("ckpt-1") ? "YES (torn!)" : "none");

  // The node dies. The local disk is lost and the in-flight drain is
  // interrupted at its current chunk — but recover() sees only committed
  // objects, so the restart chain is intact (here from the RAID group,
  // whose faster drain already committed).
  store.apply_failure(2, rng);
  auto rec2 = store.recover();
  std::printf("node death:     drain %s at %llu bytes; recover from L%d "
              "still yields %zu checkpoint(s)\n",
              xfer::to_string(rec.state),
              (unsigned long long)rec.acked_bytes, rec2->level_used,
              rec2->chain.size());

  // The replacement node resumes the partial from the last acked chunk.
  const std::size_t resumed = store.resume_drains();
  store.xfer().run_until_idle();
  const auto remote_copy = store.remote().get("ckpt-1");
  const bool identical = remote_copy && *remote_copy == expected;
  std::printf("resumed:        %zu drain(s) picked up; remote copy %s "
              "(%llu bytes, %llu interrupt(s) total)\n",
              resumed, identical ? "byte-identical" : "CORRUPT",
              (unsigned long long)(remote_copy ? remote_copy->size() : 0),
              (unsigned long long)store.xfer().stats().transfers_interrupted);
  return rec2.has_value() && rec2->chain.size() == 2 && resumed > 0 &&
         identical && store.remote_staging().partial_count() == 0;
}

}  // namespace

int main() {
  storage::MultiLevelStore store;
  Rng rng(2026);

  // A small job writing checkpoints through the store.
  mem::AddressSpace space;
  space.allocate_range(0, 256);
  for (mem::PageId id = 0; id < 256; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::CheckpointChain chain;
  chain.capture(space, {}, 0.0);
  auto t0 = store.put_checkpoint(chain.files().back());
  std::printf("full checkpoint placed: local %.3fs, raid %.3fs, remote %.3fs\n",
              t0.local, t0.raid, t0.remote);
  space.protect_all();

  for (int i = 1; i <= 4; ++i) {
    Bytes edit(128);
    for (auto& x : edit) x = std::uint8_t(rng());
    space.write(rng.uniform_u64(256), rng.uniform_u64(kPageSize - 128), edit);
    chain.capture(space, {}, double(i));
    store.put_checkpoint(chain.files().back());
    space.protect_all();
  }
  const mem::Snapshot truth = mem::Snapshot::capture(space);
  delta::PageAlignedCompressor pa;
  auto verify = [&](const storage::MultiLevelStore::Recovery& rec) {
    auto restored = ckpt::RestartEngine::restore(rec.chain, pa);
    return truth.equals_space(restored.memory.materialize());
  };

  auto r1 = store.recover();
  std::printf("healthy:        recover from L%d in %.4fs — %s\n",
              r1->level_used, r1->read_seconds,
              verify(*r1) ? "byte-exact" : "CORRUPT");

  store.apply_failure(2, rng);
  auto r2 = store.recover();
  std::printf("level-2 fail:   recover from L%d in %.4fs — %s "
              "(local disk lost; RAID member rebuilt from parity)\n",
              r2->level_used, r2->read_seconds,
              verify(*r2) ? "byte-exact" : "CORRUPT");

  store.apply_failure(3, rng);
  auto r3 = store.recover();
  std::printf("level-3 fail:   recover from L%d in %.4fs — %s "
              "(two RAID members down: only the remote copy survives)\n",
              r3->level_used, r3->read_seconds,
              verify(*r3) ? "byte-exact" : "CORRUPT");

  store.repair_raid_group();
  const auto copied = store.reseed_from_remote();
  auto r4 = store.recover();
  std::printf("after reseed:   %.1f KiB copied down; recover from L%d — %s\n",
              double(copied) / 1024.0, r4->level_used,
              verify(*r4) ? "byte-exact" : "CORRUPT");

  std::printf("\n-- act two: failure mid-drain, staged partial resumed --\n");
  const bool xfer_ok = mid_transfer_failure_walkthrough();

  return (verify(*r1) && verify(*r2) && verify(*r3) && verify(*r4) &&
          xfer_ok)
             ? 0
             : 1;
}
