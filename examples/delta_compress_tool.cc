// Delta-compression tool: encode/decode real files with the library's
// rsync-style codec — the Xdelta3 stand-in usable outside checkpointing.
//
//   build/examples/example_delta_compress_tool encode <source> <target> <delta>
//   build/examples/example_delta_compress_tool decode <source> <delta> <output>
//
// With no arguments, runs a self-demo on synthetic data.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "aic/aic.h"

using namespace aic;

namespace {

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    std::exit(2);
  }
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            std::streamsize(data.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
}

int self_demo() {
  std::printf("self-demo: 1 MiB source, target = source with 3 edits\n");
  Rng rng(7);
  Bytes source(kMiB);
  for (auto& x : source) x = std::uint8_t(rng());
  Bytes target = source;
  for (int e = 0; e < 3; ++e) {
    const std::size_t off = rng.uniform_u64(target.size() - 5000);
    for (std::size_t i = 0; i < 5000; ++i)
      target[off + i] = std::uint8_t(rng());
  }
  delta::XDelta3Codec codec;
  delta::CodecStats st;
  Bytes d = codec.encode(source, target, &st);
  std::printf("delta: %zu bytes (ratio %.4f, %llu copies, %llu adds)\n",
              d.size(), st.ratio(), (unsigned long long)st.copy_ops,
              (unsigned long long)st.add_ops);
  Bytes back = codec.decode(source, d);
  std::printf("round trip: %s\n", back == target ? "exact" : "CORRUPT");
  return back == target ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return self_demo();
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: %s encode <source> <target> <delta>\n"
                 "       %s decode <source> <delta> <output>\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  delta::XDelta3Codec codec(
      delta::XDelta3Config{.block_size = 256, .max_probes = 16,
                           .min_match = 32});
  if (mode == "encode") {
    const Bytes source = read_file(argv[2]);
    const Bytes target = read_file(argv[3]);
    delta::CodecStats st;
    const Bytes d = codec.encode(source, target, &st);
    write_file(argv[4], d);
    std::printf("%zu -> %zu bytes (ratio %.4f)\n", target.size(), d.size(),
                st.ratio());
    return 0;
  }
  if (mode == "decode") {
    const Bytes source = read_file(argv[2]);
    const Bytes d = read_file(argv[3]);
    const Bytes target = codec.decode(source, d);
    write_file(argv[4], target);
    std::printf("reconstructed %zu bytes\n", target.size());
    return 0;
  }
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
