// Adaptive checkpointing end to end: run a synthetic SPEC workload (sjeng,
// the paper's widest-swinging benchmark) under the full AIC controller and
// watch the decider place checkpoints into the cheap moments.
//
//   build/examples/example_adaptive_checkpointing [benchmark] [workers]
//   benchmark in {bzip2, sjeng, libquantum, milc, lbm, sphinx3}
//   workers: delta-compression threads on the checkpointing cores
//            (0 = auto, hardware_concurrency() - 1; 1 = serial)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "aic/aic.h"

using namespace aic;

int main(int argc, char** argv) {
  auto benchmark = workload::SpecBenchmark::kSjeng;
  if (argc > 1) {
    const std::string name = argv[1];
    bool found = false;
    for (auto b : workload::all_benchmarks()) {
      if (name == to_string(b)) {
        benchmark = b;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
      return 2;
    }
  }
  unsigned workers = 0;  // auto
  if (argc > 2) workers = unsigned(std::strtoul(argv[2], nullptr, 10));

  // Section-V testbed: failure rate 1e-3 split with Coastal shares,
  // bandwidths scaled to the synthetic footprint.
  control::ExperimentConfig cfg;
  const auto split = model::split_rate(1e-3);
  cfg.system.lambda = {split[0], split[1], split[2]};
  cfg.workload_scale = 0.25;
  cfg.compress_workers = workers;
  const auto prof = workload::spec_profile(benchmark, cfg.workload_scale);
  cfg.costs =
      control::CostModel::paper_scaled(prof.footprint_pages * kPageSize);

  // Stream the decider's reasoning.
  cfg.decision_hook = [](const control::DecisionTrace& d) {
    if (d.take) {
      std::printf(
          "t=%7.1f  CHECKPOINT  elapsed=%.0fs  w_L*=%.0fs  predicted "
          "c3=%.1fs\n",
          d.time, d.elapsed, d.w_star, d.c3_pred);
    }
  };

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "running %s (base time %.0f s) under AIC, delta pipeline: %u "
      "worker(s) (host has %u cores)...\n",
      to_string(benchmark), prof.base_time,
      workers == 0 ? (hw > 1 ? hw - 1 : 1) : workers, hw);
  const auto res =
      control::run_experiment(control::Scheme::kAic, benchmark, cfg);

  std::printf("\nper-interval trace:\n");
  std::printf("  %-10s %-8s %-12s %-10s %-10s\n", "start", "span", "dirty",
              "delta", "c3");
  for (const auto& iv : res.intervals) {
    std::printf("  %-10.1f %-8.1f %-12llu %-10.1f %-10.1f\n", iv.start_time,
                iv.w, (unsigned long long)iv.dirty_pages,
                double(iv.delta_bytes) / 1e6, iv.params.c3);
  }
  std::printf(
      "\nsummary: %zu checkpoints, mean delta %.2f MB, mean dl %.1f s\n",
      res.intervals.size(), res.mean_delta_bytes() / 1e6,
      res.mean_delta_latency());
  std::printf("exec time %.1f s (overhead %.2f%% over base %.0f s)\n",
              res.exec_time, 100.0 * res.overhead_fraction(), res.base_time);
  std::printf("NET^2 (expected turnaround / base, Eq. (1)): %.3f\n",
              res.net2);
  return 0;
}
