// Quickstart: checkpoint an in-memory "application", crash it, and restore
// byte-exact state — the library's core loop in ~80 lines.
//
//   build/examples/example_quickstart
#include <cstdio>
#include <cstring>

#include "aic/aic.h"

using namespace aic;

int main() {
  // 1. An application with a 4 MiB address space (1024 pages).
  mem::AddressSpace space;
  space.allocate_range(0, 1024);
  Rng rng(42);
  for (mem::PageId id = 0; id < 1024; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  std::printf("application footprint: %.1f MiB\n",
              bytes_to_mib(double(space.footprint_bytes())));

  // 2. A checkpoint chain: the first capture is full, later ones are
  //    incremental and delta-compressed against the previous state.
  ckpt::CheckpointChain chain;
  Bytes cpu_state = {1, 2, 3, 4};  // whatever register state you carry
  auto full = chain.capture(space, cpu_state, /*app_time=*/0.0);
  std::printf("full checkpoint: %zu pages, %.1f MiB on disk\n",
              std::size_t(full.pages_written),
              bytes_to_mib(double(full.file_bytes)));

  // 3. Work happens: protect_all() arms dirty tracking (the mprotect
  //    sweep); writes fault pages into the dirty list automatically.
  space.protect_all();
  for (int edit = 0; edit < 200; ++edit) {
    const mem::PageId id = rng.uniform_u64(1024);
    Bytes data(64);
    for (auto& x : data) x = std::uint8_t(rng());
    space.write(id, rng.uniform_u64(kPageSize - data.size()), data);
  }
  std::printf("dirty pages after edits: %zu\n", space.dirty_page_count());

  // 4. Incremental checkpoint: only dirty pages, delta-compressed.
  cpu_state = {5, 6, 7, 8};
  auto inc = chain.capture(space, cpu_state, 10.0);
  std::printf(
      "incremental checkpoint: %zu dirty pages, %.1f KiB uncompressed "
      "-> %.1f KiB delta (ratio %.3f)\n",
      std::size_t(inc.pages_written),
      double(inc.uncompressed_bytes) / 1024.0,
      double(inc.file_bytes) / 1024.0,
      double(inc.file_bytes) / double(inc.uncompressed_bytes));

  // 5. Before trusting the chain, fsck it: structural invariants plus a
  //    full payload replay (what `tools/aic_fsck` runs against disk).
  verify::ChainVerifier fsck;
  const verify::Report report = fsck.verify(chain.files());
  std::printf("chain integrity: %s\n", report.summary().c_str());
  if (!report.ok()) return 1;

  // 6. Crash! All live state is gone; restore from the chain.
  const mem::Snapshot before_crash = mem::Snapshot::capture(space);
  {
    mem::AddressSpace lost = std::move(space);  // simulate the loss
  }
  auto restored = chain.restore();
  mem::AddressSpace revived = restored.memory.materialize();

  const bool exact = before_crash.equals_space(revived);
  std::printf("restored %zu pages at app time %.1f, cpu state [%d %d %d %d]\n",
              revived.page_count(), restored.app_time,
              restored.cpu_state[0], restored.cpu_state[1],
              restored.cpu_state[2], restored.cpu_state[3]);
  std::printf("byte-exact restore: %s\n", exact ? "YES" : "NO");
  return exact ? 0 : 1;
}
