// Failure injection demo: run a workload under checkpointing while
// exponential per-level failures strike, recover from the right storage
// level each time, and verify the final memory is byte-identical to a
// failure-free run.
//
//   build/examples/example_failure_injection [total_rate]
#include <cstdio>
#include <cstdlib>

#include "aic/aic.h"

using namespace aic;

int main(int argc, char** argv) {
  double rate = 0.02;  // failures per second — aggressive, like Section V.C
  if (argc > 1) rate = std::atof(argv[1]);

  sim::FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.25;
  cfg.failures = failure::FailureSpec::from_total(rate);
  cfg.checkpoint_interval = 10.0;

  std::printf(
      "injecting failures at %.3f/s (levels split %.0f%%/%.0f%%/%.0f%% like "
      "the Coastal cluster)\n",
      rate, 100.0 * cfg.failures.lambda[0] / cfg.failures.total(),
      100.0 * cfg.failures.lambda[1] / cfg.failures.total(),
      100.0 * cfg.failures.lambda[2] / cfg.failures.total());

  RunningStats net2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    const auto res = sim::run_failure_sim(cfg);
    std::printf(
        "seed %llu: turnaround %.1f s (base %.0f s, NET^2 %.3f), "
        "%d failures [f1=%d f2=%d f3=%d], %d checkpoints, %d restores, "
        "final state %s\n",
        (unsigned long long)seed, res.turnaround, res.base_time, res.net2(),
        res.total_failures(), res.failures_by_level[0],
        res.failures_by_level[1], res.failures_by_level[2], res.checkpoints,
        res.restores, res.final_state_verified ? "VERIFIED" : "DIVERGED");
    if (!res.final_state_verified) return 1;
    net2.add(res.net2());
  }
  std::printf("mean NET^2 across seeds: %.3f\n", net2.mean());
  return 0;
}
