// Model explorer: a small CLI over the multi-level checkpoint models.
// Feed it your system's failure rates and checkpoint latencies; it prints
// the NET^2 curve, the optimal work span for each level combination, and
// the Moody baseline schedule — the sizing exercise an operator would do
// before deploying checkpointing.
//
//   build/examples/example_model_explorer [lambda c1 c2 c3]
//   defaults: the Coastal cluster (lambda = 2.4e-6, c = 0.5/4.5/1052).
#include <cstdio>
#include <cstdlib>

#include "aic/aic.h"

using namespace aic;
using model::LevelCombo;

int main(int argc, char** argv) {
  auto sys = model::SystemProfile::coastal();
  if (argc == 5) {
    const double lambda = std::atof(argv[1]);
    const auto split = model::split_rate(lambda);
    sys.lambda = {split[0], split[1], split[2]};
    sys.c = {std::atof(argv[2]), std::atof(argv[3]), std::atof(argv[4])};
    sys.r = sys.c;
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [lambda c1 c2 c3]\n", argv[0]);
    return 2;
  }

  std::printf("system: lambda = %.3g /s (f1 %.3g, f2 %.3g, f3 %.3g)\n",
              sys.total_lambda(), sys.lambda[0], sys.lambda[1],
              sys.lambda[2]);
  std::printf("        c1 = %.3g s, c2 = %.3g s, c3 = %.3g s, r_k = c_k\n\n",
              sys.c[0], sys.c[1], sys.c[2]);

  // Optimal span per level combination.
  std::printf("%-8s %-12s %-10s\n", "combo", "w* (s)", "NET^2");
  for (auto combo :
       {LevelCombo::kL1L3, LevelCombo::kL2L3, LevelCombo::kL1L2L3}) {
    const auto best = model::minimize_scalar(
        [&](double w) { return model::net2_static(combo, sys, w); }, 1.0,
        5e6, 32, 50);
    std::printf("%-8s %-12.0f %-10.4f\n", to_string(combo), best.x,
                best.value);
  }
  const auto moody = model::optimize_moody(sys);
  std::printf("%-8s %-12.0f %-10.4f  (n1=%d, n2=%d — blocking baseline)\n\n",
              "Moody", moody.w, moody.net2, moody.n1, moody.n2);

  // The NET^2 curve for L2L3 (the combination AIC uses online).
  std::printf("NET^2(w) for L2L3 (feasible from w = c3 - c1 = %.0f s):\n",
              sys.c[2] - sys.c[0]);
  const double lo = (sys.c[2] - sys.c[0]) * 1.01 + 1.0;
  for (double w = lo; w < lo * 64; w *= 2.0) {
    const double v = model::net2_static(LevelCombo::kL2L3, sys, w);
    std::printf("  w = %8.0f s  NET^2 = %.4f  ", w, v);
    const int bars = int((v - 1.0) * 200.0);
    for (int i = 0; i < std::min(bars, 60); ++i) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
