#!/usr/bin/env bash
# Benchmark orchestrator: builds the bench suite, runs every target, and
# collects the BENCH_<target>.json telemetry records (plus per-target
# stdout logs) into one results directory — the unit that aic_benchdiff
# compares across commits.
#
# Usage:
#   scripts/bench.sh [--smoke] [--out DIR] [--baseline DIR]
#                    [--threshold T] [--filter REGEX]
#
#   --smoke        tiny parameters (AIC_BENCH_SMOKE=1); reproduction
#                  CHECKs become informational. Default: full sizes.
#                  Smoke runs diff against the recorded bench/baselines
#                  seed records by default (they were recorded in smoke
#                  mode), so a perf regression fails the run without any
#                  flags; pass --baseline to override.
#   --out DIR      results directory (default: a timestamped directory
#                  under bench-results/)
#   --baseline DIR after the run, diff against a previous results
#                  directory with aic_benchdiff; bench.sh then exits
#                  nonzero iff the diff reports a regression
#   --threshold T  regression threshold forwarded to aic_benchdiff
#   --filter REGEX only run bench targets whose name matches REGEX
#
# Typical regression workflow:
#   git checkout main      && scripts/bench.sh --out /tmp/base
#   git checkout my-branch && scripts/bench.sh --baseline /tmp/base
set -uo pipefail
cd "$(dirname "$0")/.."

smoke=0
out_dir=""
baseline=""
threshold=""
filter=""
while [[ $# -gt 0 ]]; do
  case "$1" in
  --smoke) smoke=1 ;;
  --out)
    shift
    out_dir="${1:?--out needs a directory}"
    ;;
  --baseline)
    shift
    baseline="${1:?--baseline needs a directory}"
    ;;
  --threshold)
    shift
    threshold="${1:?--threshold needs a value}"
    ;;
  --filter)
    shift
    filter="${1:?--filter needs a regex}"
    ;;
  *)
    echo "usage: scripts/bench.sh [--smoke] [--out DIR] [--baseline DIR]" \
      "[--threshold T] [--filter REGEX]" >&2
    exit 2
    ;;
  esac
  shift
done

[[ -n "$out_dir" ]] || out_dir="bench-results/$(date +%Y%m%d-%H%M%S)"

# Smoke runs gate against the recorded seed baselines by default — they
# were recorded with AIC_BENCH_SMOKE=1, so the parameters match. Full runs
# never default (full-size numbers are not comparable to smoke records).
if [[ -z "$baseline" && "$smoke" == 1 ]] &&
  compgen -G "bench/baselines/BENCH_*.json" >/dev/null; then
  baseline="bench/baselines"
  echo "== bench: defaulting --baseline to bench/baselines =="
fi

jobs="$(nproc)"
echo "== bench: building (jobs=$jobs) =="
if ! cmake -B build -S . >/dev/null || ! cmake --build build -j"$jobs"; then
  echo "bench: build failed" >&2
  exit 2
fi

mkdir -p "$out_dir" || exit 2
echo "== bench: results -> $out_dir (smoke=$smoke) =="

failed=()
ran=0
for b in build/bench/*; do
  [[ -x "$b" ]] || continue
  name="$(basename "$b")"
  [[ -z "$filter" || "$name" =~ $filter ]] || continue
  echo "-- bench: $name"
  args=()
  [[ "$name" == micro_* && "$smoke" == 1 ]] &&
    args+=(--benchmark_min_time=0.01)
  env_smoke=()
  [[ "$smoke" == 1 ]] && env_smoke=(AIC_BENCH_SMOKE=1)
  if ! env "${env_smoke[@]}" AIC_BENCH_OUT="$out_dir" \
    "$b" "${args[@]}" >"$out_dir/$name.log" 2>&1; then
    failed+=("$name")
    echo "   FAILED (log: $out_dir/$name.log)"
  fi
  ran=$((ran + 1))
done

echo
echo "== bench: $ran target(s), ${#failed[@]} failure(s) =="
if [[ ${#failed[@]} -gt 0 ]]; then
  printf 'bench: failed: %s\n' "${failed[*]}" >&2
  exit 1
fi

if [[ -n "$baseline" ]]; then
  echo "== bench: diff vs $baseline =="
  diff_args=()
  [[ -n "$threshold" ]] && diff_args+=(--threshold "$threshold")
  build/tools_build/aic_benchdiff "${diff_args[@]}" "$baseline" "$out_dir"
  exit $?
fi
echo "bench: OK — compare later with:" \
  "build/tools_build/aic_benchdiff <old> $out_dir"
