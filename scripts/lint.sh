#!/usr/bin/env bash
# Static-analysis gate.
#
# Primary analyzer: tools/aic_lint — a token-level, project-aware engine
# (src/analysis/) covering the L1–L6 conventions below plus the
# include-layering DAG, determinism (entropy/clock/env gateways), and
# exception-discipline rules, with a checked-in suppression baseline
# (.aic-lint-baseline.json) and inline `aic-lint: allow(rule)` comments.
# See DESIGN.md §14 for the rule catalog.
#
# When the toolchain can build aic_lint, it is the gate. When it cannot
# (no cmake/compiler), the script falls back to comment/string-stripped
# greps for the original six conventions:
#
#   L1  no raw `new`/`delete` outside src/common/;
#   L2  no `#include <iostream>` in src/ library code;
#   L3  no `printf`-family calls in src/;
#   L4  library code never calls `abort`/`exit`;
#   L5  no chrono clock ::now() in src/ outside src/obs/, nor anywhere in
#       bench/ or tools/ — obs::wall_now_ns is the single host-clock
#       gateway;
#   L6  no raw `memcpy(` in src/delta/ or src/ckpt/ (aliasing-sensitive
#       layers) — std::memmove or common/bytes.h copy_no_overlap.
#
# clang-tidy (when installed) runs in both modes, off the exported
# compile_commands.json.
#
# Usage: scripts/lint.sh
# Exit: 0 clean, 1 findings.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0
fail() {
  echo "lint: $1"
  shift
  printf '  %s\n' "$@"
  status=1
}

# Strips // and /* */ comments plus string/char literal *contents* (line
# count preserved, quotes kept as empty literals), so prose like
# "// new pages stored verbatim" and labels like "chunk time (s)" never
# trip the greps — and a "//" inside a string no longer truncates the
# line and hides real code after it. Raw strings are beyond a line
# stripper; aic_lint handles those.
strip_code() { # strip_code <file>
  awk '
    {
      line = $0; out = ""; i = 1; n = length(line)
      while (i <= n) {
        c = substr(line, i, 1); two = substr(line, i, 2)
        if (in_block) {
          if (two == "*/") { in_block = 0; i += 2 } else i++
          continue
        }
        if (two == "//") break
        if (two == "/*") { in_block = 1; i += 2; continue }
        if (c == "\"" || c == "\x27") {
          q = c; i++
          while (i <= n) {
            d = substr(line, i, 1)
            if (d == "\\") { i += 2; continue }
            i++
            if (d == q) break
          }
          out = out q q
          continue
        }
        out = out c; i++
      }
      print out
    }' "$1"
}

scan_code() { # scan_code <pattern> <file>...
  local pattern=$1
  shift
  local f
  for f in "$@"; do
    strip_code "$f" | grep -nE "$pattern" | sed "s|^|$f:|"
  done
  return 0
}

run_grep_rules() {
  mapfile -t lib_files < <(find src -name '*.cc' -o -name '*.h' | sort)
  mapfile -t noncommon_files < <(printf '%s\n' "${lib_files[@]}" \
    | grep -v '^src/common/')

  # --- L1: raw new/delete outside common/ -----------------------------------
  # Allocation expressions only: `new Type`/`new (`, `delete x`/`delete[] x`.
  mapfile -t hits < <(scan_code \
    '(^|[^[:alnum:]_])(new +[A-Za-z_(]|delete( *\[\])? +[A-Za-z_*])' \
    "${noncommon_files[@]}")
  if ((${#hits[@]})); then
    fail "raw new/delete outside src/common/:" "${hits[@]}"
  fi

  # --- L2: iostream in library code -----------------------------------------
  mapfile -t hits < <(scan_code '#include <iostream>' "${lib_files[@]}")
  if ((${#hits[@]})); then
    fail "#include <iostream> in src/ library code:" "${hits[@]}"
  fi

  # --- L3: printf-family in library code ------------------------------------
  mapfile -t hits < <(scan_code \
    '(^|[^[:alnum:]_])(printf|fprintf|puts) *\(' "${lib_files[@]}")
  if ((${#hits[@]})); then
    fail "printf-family call in src/ library code:" "${hits[@]}"
  fi

  # --- L4: abort/exit in library code ---------------------------------------
  # (aic_lint also covers _Exit/quick_exit and honours inline allows; the
  # fallback keeps the original, allow-free scope.)
  mapfile -t hits < <(scan_code \
    '(^|[^[:alnum:]_])(std::)?(abort|exit) *\(' "${lib_files[@]}")
  if ((${#hits[@]})); then
    fail "abort/exit in src/ library code:" "${hits[@]}"
  fi

  # --- L5: host-clock reads outside src/obs/ --------------------------------
  # bench/ and tools/ are held to the same rule: their timing flows into
  # BENCH_<target>.json records that aic_benchdiff compares across runs, so
  # it must come from the one gateway the tests can reason about.
  mapfile -t nonobs_files < <(printf '%s\n' "${lib_files[@]}" \
    | grep -v '^src/obs/')
  mapfile -t frontend_files < <(find bench tools -name '*.cc' -o -name '*.h' \
    | sort)
  mapfile -t hits < <(scan_code \
    '(system_clock|steady_clock|high_resolution_clock) *:: *now *\(' \
    "${nonobs_files[@]}" "${frontend_files[@]}")
  if ((${#hits[@]})); then
    fail "chrono clock ::now() outside src/obs/ (use obs::wall_now_ns):" \
      "${hits[@]}"
  fi

  # --- L6: raw memcpy in the aliasing-sensitive layers ----------------------
  mapfile -t overlap_files < <(find src/delta src/ckpt \
    -name '*.cc' -o -name '*.h' | sort)
  mapfile -t hits < <(scan_code \
    '(^|[^[:alnum:]_])(std::)?memcpy *\(' "${overlap_files[@]}")
  if ((${#hits[@]})); then
    fail "raw memcpy in src/delta|src/ckpt (use std::memmove or copy_no_overlap):" \
      "${hits[@]}"
  fi
}

# --- aic_lint (primary) or the grep fallback ---------------------------------
aic_lint_bin=""
if command -v cmake >/dev/null 2>&1 &&
  cmake -B build -S . >/dev/null 2>&1 &&
  cmake --build build --target aic_lint -j"$(nproc)" >/dev/null 2>&1; then
  aic_lint_bin=build/tools_build/aic_lint
fi
if [[ -x "$aic_lint_bin" ]]; then
  echo "lint: running aic_lint (token-level analyzer, DESIGN.md §14)"
  if ! "$aic_lint_bin" --root .; then
    status=1
  fi
else
  echo "lint: cannot build aic_lint; falling back to stripped greps (L1-L6)"
  run_grep_rules
fi

# --- clang-tidy (optional: profile in .clang-tidy) ---------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  build_dir=build
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    cmake -B "$build_dir" -S . >/dev/null  # exports compile_commands.json
  fi
  echo "lint: running clang-tidy over src/ (profile: .clang-tidy)"
  if ! find src -name '*.cc' -print0 \
    | xargs -0 -n8 clang-tidy -p "$build_dir" --quiet; then
    status=1
  fi
else
  echo "lint: clang-tidy not installed; skipping (aic_lint/greps still enforced)"
fi

if ((status == 0)); then
  echo "lint: OK"
fi
exit "$status"
