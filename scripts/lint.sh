#!/usr/bin/env bash
# Static-analysis gate: clang-tidy (when installed) plus cheap greps for
# repo conventions that compilers don't enforce:
#
#   L1  no raw `new`/`delete` outside src/common/ — ownership is
#       unique_ptr/containers everywhere else;
#   L2  no `#include <iostream>` in src/ library code — the library reports
#       through return values and CheckError, never by printing (tools/,
#       examples/, bench/ are front-ends and may print);
#   L3  no `printf`-family calls in src/ for the same reason;
#   L4  library code never calls `abort`/`exit` — invariants throw
#       CheckError so callers and tests can observe them;
#   L5  no chrono clock ::now() in src/ outside src/obs/, nor anywhere in
#       bench/ or tools/ — obs::wall_now_ns is the single host-clock
#       gateway, so wall time stays mockable, the virtual-time components
#       stay deterministic, and every benchmark timestamp is comparable.
#   L6  no raw `memcpy(` in src/delta/ or src/ckpt/ — those layers move
#       bytes between regions that may alias (in-place reconstruction,
#       payload framing), and a silent memcpy over an overlap is exactly
#       the bug class the in-place scheduler exists to prevent. Use
#       std::memmove when overlap is legal, or common/bytes.h
#       copy_no_overlap, which asserts disjointness before delegating.
#
# Usage: scripts/lint.sh
# Exit: 0 clean, 1 findings.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0
fail() {
  echo "lint: $1"
  shift
  printf '  %s\n' "$@"
  status=1
}

# Greps code with `//` comments stripped (line numbers preserved), so
# prose like "// new pages stored verbatim" never trips the checks.
scan_code() { # scan_code <pattern> <file>...
  local pattern=$1
  shift
  local f
  for f in "$@"; do
    sed 's|//.*||' "$f" | grep -nE "$pattern" | sed "s|^|$f:|"
  done
  return 0
}

mapfile -t lib_files < <(find src -name '*.cc' -o -name '*.h' | sort)
mapfile -t noncommon_files < <(printf '%s\n' "${lib_files[@]}" \
  | grep -v '^src/common/')

# --- L1: raw new/delete outside common/ -------------------------------------
# Allocation expressions only: `new Type`/`new (`, `delete x`/`delete[] x`.
mapfile -t hits < <(scan_code \
  '(^|[^[:alnum:]_])(new +[A-Za-z_(]|delete( *\[\])? +[A-Za-z_*])' \
  "${noncommon_files[@]}")
if ((${#hits[@]})); then
  fail "raw new/delete outside src/common/:" "${hits[@]}"
fi

# --- L2: iostream in library code --------------------------------------------
mapfile -t hits < <(grep -rn '#include <iostream>' src || true)
if ((${#hits[@]})); then
  fail "#include <iostream> in src/ library code:" "${hits[@]}"
fi

# --- L3: printf-family in library code ---------------------------------------
mapfile -t hits < <(scan_code \
  '(^|[^[:alnum:]_])(printf|fprintf|puts) *\(' "${lib_files[@]}")
if ((${#hits[@]})); then
  fail "printf-family call in src/ library code:" "${hits[@]}"
fi

# --- L4: abort/exit in library code ------------------------------------------
mapfile -t hits < <(scan_code \
  '(^|[^[:alnum:]_])(std::)?(abort|exit) *\(' "${lib_files[@]}")
if ((${#hits[@]})); then
  fail "abort/exit in src/ library code:" "${hits[@]}"
fi

# --- L5: host-clock reads outside src/obs/ -----------------------------------
# bench/ and tools/ are held to the same rule: their timing flows into
# BENCH_<target>.json records that aic_benchdiff compares across runs, so
# it must come from the one gateway the tests can reason about.
mapfile -t nonobs_files < <(printf '%s\n' "${lib_files[@]}" \
  | grep -v '^src/obs/')
mapfile -t frontend_files < <(find bench tools -name '*.cc' -o -name '*.h' \
  | sort)
mapfile -t hits < <(scan_code \
  '(system_clock|steady_clock|high_resolution_clock) *:: *now *\(' \
  "${nonobs_files[@]}" "${frontend_files[@]}")
if ((${#hits[@]})); then
  fail "chrono clock ::now() outside src/obs/ (use obs::wall_now_ns):" \
    "${hits[@]}"
fi

# --- L6: raw memcpy in the aliasing-sensitive layers -------------------------
mapfile -t overlap_files < <(find src/delta src/ckpt \
  -name '*.cc' -o -name '*.h' | sort)
mapfile -t hits < <(scan_code \
  '(^|[^[:alnum:]_])(std::)?memcpy *\(' "${overlap_files[@]}")
if ((${#hits[@]})); then
  fail "raw memcpy in src/delta|src/ckpt (use std::memmove or copy_no_overlap):" \
    "${hits[@]}"
fi

# --- clang-tidy (optional: profile in .clang-tidy) ---------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  build_dir=build
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "lint: running clang-tidy over src/ (profile: .clang-tidy)"
  if ! find src -name '*.cc' -print0 \
    | xargs -0 -n8 clang-tidy -p "$build_dir" --quiet; then
    status=1
  fi
else
  echo "lint: clang-tidy not installed; skipping (greps still enforced)"
fi

if ((status == 0)); then
  echo "lint: OK"
fi
exit "$status"
