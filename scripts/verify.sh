#!/usr/bin/env bash
# PR-time verification:
#   1. tier-1: configure, build, full ctest suite (ROADMAP.md contract);
#   2. ThreadSanitizer pass over the concurrency surface (thread pool,
#      parallel delta pipeline, async checkpointer) via AIC_SANITIZE=thread.
#
# Usage: scripts/verify.sh [--tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

if [[ "${1:-}" == "--tier1-only" ]]; then
  exit 0
fi

echo "== tsan: concurrency tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DAIC_SANITIZE=thread >/dev/null
# Only the test binary: benchmarks/examples don't add TSan coverage.
cmake --build build-tsan -j"$jobs" --target aic_tests
ctest --test-dir build-tsan --output-on-failure -j"$jobs" \
  -R 'ThreadPool|Parallel|Async|UnchangedFastPath'
echo "verify: OK"
