#!/usr/bin/env bash
# PR-time verification matrix (the gate recorded in ROADMAP.md):
#
#   tier1        configure + build with AIC_WERROR=ON (warnings are
#                errors across src/tests/bench/examples/tools) + full
#                ctest suite                                  [build/]
#   lint         scripts/lint.sh — the aic_lint token-level analyzer
#                (grep fallback when unbuildable), plus clang-tidy when
#                installed
#   tsan         concurrency tests under ThreadSanitizer      [build-tsan/]
#   asan+ubsan   the FULL test suite under AddressSanitizer +
#                UndefinedBehaviorSanitizer, plus the aic_lint fixture
#                corpus and hostile inputs driven through the sanitized
#                binary                                       [build-asan/]
#
# A separate bench-smoke leg builds every bench target and runs each with
# AIC_BENCH_SMOKE=1 (tiny parameters, reproduction CHECKs informational):
# it gates on crashes and bit-rot in the bench mains, not on reproducing
# the paper's shapes at toy sizes. Each run must also emit a schema-valid
# BENCH_<target>.json telemetry record (validated with aic_benchdiff
# --check), and a self-vs-self aic_benchdiff over the set must report zero
# regressions — the tautology case that catches diff-pipeline bit-rot.
#
# Usage:
#   scripts/verify.sh               # full matrix (identical to --matrix)
#   scripts/verify.sh --matrix      # full matrix + per-leg summary table
#   scripts/verify.sh --tier1-only  # just tier1 + lint (fast local loop)
#   scripts/verify.sh --bench-smoke # bench targets only, tiny parameters
#
# Every leg runs even if an earlier one fails; the summary prints one line
# per leg and the exit status is nonzero iff any leg failed.
set -uo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"
mode="${1:-}"

declare -a leg_names=() leg_results=()
record() { # record <leg> <status> <detail>
  leg_names+=("$1")
  leg_results+=("$2	$3")
}

ctest_passed() { # parses "100% tests passed, 0 tests failed out of 302"
  grep -oE '[0-9]+% tests passed.*out of [0-9]+' "$1" | tail -1
}

run_tier1() {
  echo "== tier1: -Werror build + full test suite =="
  local log
  log=$(mktemp)
  if cmake -B build -S . -DAIC_WERROR=ON >/dev/null &&
    cmake --build build -j"$jobs" &&
    ctest --test-dir build --output-on-failure -j"$jobs" | tee "$log"; then
    record tier1 OK "$(ctest_passed "$log"), -Werror clean"
  else
    record tier1 FAIL "see output above"
  fi
  rm -f "$log"
}

run_lint() {
  echo "== lint: aic_lint analyzer + clang-tidy =="
  if scripts/lint.sh; then
    record lint OK "clean"
  else
    record lint FAIL "see output above"
  fi
}

run_tsan() {
  echo "== tsan: concurrency tests under ThreadSanitizer =="
  local log
  log=$(mktemp)
  # Only the test binary: benchmarks/examples don't add TSan coverage.
  if cmake -B build-tsan -S . -DAIC_SANITIZE=thread >/dev/null &&
    cmake --build build-tsan -j"$jobs" --target aic_tests &&
    ctest --test-dir build-tsan --output-on-failure -j"$jobs" \
      -R 'ThreadPool|Parallel|Async|UnchangedFastPath|Xfer|Obs|Correcting|Fleet|Lanl|Elastic|Rewind|Timeseries|Slo|Causal' | tee "$log"; then
    record tsan OK "$(ctest_passed "$log")"
  else
    record tsan FAIL "see output above"
  fi
  rm -f "$log"
}

# aic_lint under the sanitizers: the lexer's hostile-input totality claim,
# checked where it bites. Exit codes are part of the contract — 1 for
# findings on both fixture trees, 0 for the clean self-scan.
lint_fixtures_sanitized() {
  local lint=build-asan/tools_build/aic_lint
  "$lint" --root tests/analysis/corpus >/dev/null
  if [[ $? -ne 1 ]]; then
    echo "aic_lint(asan): corpus scan should exit 1 (findings)"
    return 1
  fi
  "$lint" --root tests/analysis/hostile >/dev/null
  if [[ $? -ne 1 ]]; then
    echo "aic_lint(asan): hostile scan should exit 1 (lex-errors)"
    return 1
  fi
  if ! "$lint" --root . >/dev/null; then
    echo "aic_lint(asan): self-scan should be clean against the baseline"
    return 1
  fi
  echo "-- aic_lint fixture/hostile/self scans clean under ASan+UBSan"
}

# aic_top under the sanitizers: record a small fleet run, then render and
# replay it — the whole telemetry JSON path (write, parse, render) on real
# recorded data.
aic_top_sanitized() {
  local top=build-asan/tools_build/aic_top
  local dir
  dir=$(mktemp -d)
  if ! "$top" --demo --jobs 40 --out "$dir" >/dev/null; then
    echo "aic_top(asan): demo run failed"
    rm -rf "$dir"
    return 1
  fi
  if ! "$top" --top 5 "$dir/telemetry.json" >/dev/null ||
    ! "$top" --follow "$dir/telemetry.json" >/dev/null; then
    echo "aic_top(asan): render/replay of the recorded run failed"
    rm -rf "$dir"
    return 1
  fi
  rm -rf "$dir"
  echo "-- aic_top demo + recorded-run render clean under ASan+UBSan"
}

run_asan_ubsan() {
  echo "== asan+ubsan: full test suite under ASan + UBSan =="
  local log
  log=$(mktemp)
  if cmake -B build-asan -S . -DAIC_SANITIZE=address,undefined >/dev/null &&
    cmake --build build-asan -j"$jobs" \
      --target aic_tests aic_fsck aic_report aic_benchdiff aic_lint aic_top &&
    ctest --test-dir build-asan --output-on-failure -j"$jobs" | tee "$log" &&
    lint_fixtures_sanitized &&
    aic_top_sanitized; then
    record "asan+ubsan" OK "$(ctest_passed "$log"), aic_lint + aic_top clean"
  else
    record "asan+ubsan" FAIL "see output above"
  fi
  rm -f "$log"
}

run_bench_smoke() {
  echo "== bench-smoke: all bench targets at tiny parameters =="
  if ! cmake -B build -S . >/dev/null || ! cmake --build build -j"$jobs"; then
    record bench-smoke FAIL "build failed"
    return
  fi
  local out_dir
  out_dir=$(mktemp -d)
  local failed=() ran=0
  for b in build/bench/*; do
    [[ -x "$b" ]] || continue
    local name
    name="$(basename "$b")"
    echo "-- bench-smoke: $name"
    if [[ "$name" == micro_* ]]; then
      AIC_BENCH_SMOKE=1 AIC_BENCH_OUT="$out_dir" \
        "$b" --benchmark_min_time=0.01 >/dev/null || failed+=("$name")
    else
      AIC_BENCH_SMOKE=1 AIC_BENCH_OUT="$out_dir" "$b" >/dev/null ||
        failed+=("$name")
    fi
    [[ -f "$out_dir/BENCH_$name.json" ]] || failed+=("$name(no-record)")
    ran=$((ran + 1))
  done
  # Telemetry gate: every record parses, and self-vs-self diffs clean.
  if [[ ${#failed[@]} -eq 0 ]]; then
    build/tools_build/aic_benchdiff --check "$out_dir" >/dev/null ||
      failed+=("benchdiff-check")
    build/tools_build/aic_benchdiff "$out_dir" "$out_dir" >/dev/null ||
      failed+=("benchdiff-self")
  fi
  if [[ ${#failed[@]} -eq 0 ]]; then
    record bench-smoke OK \
      "$ran bench target(s) ran clean, telemetry records valid"
  else
    record bench-smoke FAIL "crashed/nonzero: ${failed[*]}"
  fi
  rm -rf "$out_dir"
}

case "$mode" in
"" | --matrix)
  run_tier1
  run_lint
  run_tsan
  run_asan_ubsan
  run_bench_smoke
  ;;
--tier1-only)
  run_tier1
  run_lint
  ;;
--bench-smoke)
  run_bench_smoke
  ;;
*)
  echo "usage: scripts/verify.sh [--matrix|--tier1-only|--bench-smoke]" >&2
  exit 2
  ;;
esac

echo
echo "== verify matrix summary =="
status=0
for i in "${!leg_names[@]}"; do
  IFS=$'\t' read -r result detail <<<"${leg_results[$i]}"
  printf '%-12s %-5s %s\n' "${leg_names[$i]}" "$result" "$detail"
  [[ "$result" == OK ]] || status=1
done
[[ "$status" == 0 ]] && echo "verify: OK" || echo "verify: FAILED"
exit "$status"
