const char* hostile_d = R"this delimiter has spaces(x)";
