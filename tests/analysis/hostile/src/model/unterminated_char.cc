char hostile_c = 'a
