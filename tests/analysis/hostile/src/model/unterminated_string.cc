const char* hostile_s = "runs off the end of the file
