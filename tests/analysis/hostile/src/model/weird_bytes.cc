int hostile_bytes = 0; €þÿ /* Ã */ "ð" 
