const char* hostile_r = R"x(never closed
