int hostile_a = 1;
/* never closed
