// TP exc-catch-all: a catch (...) that swallows the exception.
void corpus_step();
bool corpus_try_step() {
  try {
    corpus_step();
  } catch (...) {
    return false;
  }
  return true;
}
