// TN own-new-delete: deleted special members, comments, and string
// literals mention new/delete without allocating anything.
struct CorpusPinned {
  CorpusPinned(const CorpusPinned&) = delete;
  CorpusPinned& operator=(const CorpusPinned&) = delete;
};
/* new pages are grown elsewhere; delete never appears as code here */
const char* corpus_ownership_doc() { return "new delete placement"; }
