// TP own-new-delete: raw allocation in library code outside src/common/.
int* corpus_leaky(int v) {
  int* p = new int(v);
  delete p;
  return nullptr;
}
