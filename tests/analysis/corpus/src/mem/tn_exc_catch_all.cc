// TN exc-catch-all: rethrowing and capturing catch (...) blocks are the
// sanctioned shapes.
#include <exception>
void corpus_step();
void corpus_guard(std::exception_ptr& slot) {
  try {
    corpus_step();
  } catch (...) {
    slot = std::current_exception();
  }
  try {
    corpus_step();
  } catch (...) {
    throw;
  }
}
