// TP lex-error: the block comment never closes; the analyzer reports it
// instead of silently mis-scanning the rest of the file.
int corpus_lex_tp = 1;
/* unterminated
