// TN lex-error: raw strings, encoding prefixes, digit separators, and
// line splices all tokenize cleanly.
const char* corpus_raw = R"lint(contains "quotes", // and */ markers)lint";
const char* corpus_u8 = u8"prefixed";
unsigned corpus_sep = 1'000'000;
#define CORPUS_TWO_LINES(x) \
  ((x) + 1)
int corpus_spliced = CORPUS_TWO_LINES(1);
