// TN exc-throw-type: a project error type deriving from CheckError is
// legal to throw the moment it is declared, and bare rethrow is fine.
#include "common/check.h"
namespace aic::storage {
class CorpusStoreError : public aic::CheckError {
 public:
  using CheckError::CheckError;
};
void corpus_fail_typed() { throw CorpusStoreError("stale epoch"); }
void corpus_passthrough() {
  try {
    corpus_fail_typed();
  } catch (const CorpusStoreError&) {
    throw;
  }
}
}  // namespace aic::storage
