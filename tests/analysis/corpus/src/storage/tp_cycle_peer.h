// Peer half of the layer-cycle fixture: storage -> ckpt is legal in
// isolation, but combined with the other half it forms a cycle.
#pragma once
#include "ckpt/tp_layer_cycle.h"
