// TP exc-throw-type: throwing outside the CheckError family, and
// throwing a non-class expression.
#include <stdexcept>
void corpus_fail_open() {
  throw std::runtime_error("bad manifest");
}
void corpus_fail_harder() {
  throw 42;
}
