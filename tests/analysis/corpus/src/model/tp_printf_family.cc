// TP printf-family: direct printing from library code.
#include <cstdio>
void corpus_report(int v) {
  std::printf("v=%d\n", v);
  fprintf(stderr, "v=%d\n", v);
}
