// TP layer-edge: model/ may depend only on common/; reaching into sim/
// inverts the layering.
#pragma once
#include "sim/engine.h"
