// TN printf-family: member calls, other-namespace qualification, and
// string literals are not calls to the C printing functions.
struct CorpusSink;
void corpus_use(CorpusSink& sink) {
  sink.printf("routed through an injected sink");
  fmt::printf("different namespace entirely");
}
const char* corpus_l3_doc() { return "printf(%d)"; }
