// TN include-iostream: the banned header appears only in a comment and a
// string literal; the real includes are fine.
// #include <iostream>
#include <sstream>
const char* corpus_l2_doc() { return "#include <iostream>"; }
