// TN overlap-memcpy: the rule only covers the aliasing-sensitive layers
// (delta/, ckpt/); plain memcpy elsewhere is fine.
#include <cstring>
void corpus_copy(char* dst, const char* src, unsigned n) {
  std::memcpy(dst, src, n);
}
