// TP include-iostream: library code pulling in the streaming/printing
// header.
#include <iostream>
int corpus_model_tp_l2 = 0;
