// TN exc-catch-value: const-reference, pointer, and fundamental-type
// catches are fine.
void corpus_send();
void corpus_recover() {
  try {
    corpus_send();
  } catch (const CorpusFault& fault) {
    corpus_log(fault);
  }
  try {
    corpus_send();
  } catch (int code) {
    corpus_log_code(code);
  }
}
