// TP exc-catch-value: catching a class type by value slices it.
void corpus_send();
void corpus_recover() {
  try {
    corpus_send();
  } catch (CorpusFault fault) {
    corpus_log(fault);
  }
}
