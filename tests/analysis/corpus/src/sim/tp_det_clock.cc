// TP det-clock: host wall-clock reads in library code.
#include <ctime>
long corpus_wall() {
  std::timespec ts{};
  clock_gettime(0, &ts);
  return long(time(nullptr)) + ts.tv_sec;
}
