// TN det-clock: "time" inside string literals (the classic grep false
// positive), member calls, and lookalike identifiers.
struct CorpusHist;
struct CorpusSched;
long corpus_record(CorpusHist& h, CorpusSched& sched, double v) {
  h.observe("chunk time (s)", v);
  return sched.time(3) + corpus_timeline(v);
}
