// TN abort-exit: lookalike identifiers, member calls, comments, and
// string literals.
struct CorpusProc;
int corpus_exit_code();
int corpus_shutdown(CorpusProc& p) {
  p.exit(0);               /* abort() only inside this comment */
  const char* doc = "call exit(1) to stop";
  (void)doc;
  return corpus_exit_code();
}
