// TP det-env: ambient configuration reads/writes in library code.
#include <cstdlib>
const char* corpus_mode() {
  setenv("AIC_SEEN", "1", 1);
  return std::getenv("AIC_MODE");
}
