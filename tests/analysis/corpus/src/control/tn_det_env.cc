// TN det-env: getenv appears only in a comment and a string; the config
// object is passed explicitly.
struct CorpusConfig {
  const char* get(const char* key) const;
};
// configuration is injected, never read via getenv()
const char* corpus_mode(const CorpusConfig& cfg) {
  const char* doc = "getenv(\"AIC_MODE\") is banned";
  (void)doc;
  return cfg.get("mode");
}
