// TP abort-exit: the string literal contains "//", which truncated the
// old sed-based scan and hid the call after it — the token lexer does not
// fall for it. _Exit is also in the family (the old grep missed it).
#include <cstdlib>
void corpus_die() {
  const char* doc = "http://example.org/aic"; std::abort();
}
void corpus_die_harder() { std::_Exit(3); }
