// Inline-suppression fixture: the finding exists but is allowed by the
// marker comment on the same line.
#include <cstdlib>
void corpus_deliberate_exit() {
  std::abort();  // aic-lint: allow(abort-exit): fixture for inline suppression
}
