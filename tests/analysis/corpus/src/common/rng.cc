// TN det-entropy: src/common/rng.* is the sanctioned entropy gateway,
// exempt from the rule by design.
#include <cstdlib>
unsigned corpus_seed_host_entropy(unsigned seed) {
  srand(seed);
  return unsigned(rand());
}
