// TN own-new-delete: src/common/ is the sanctioned home for raw
// allocation primitives, so the rule is exempt here by design.
char* corpus_arena_grow(unsigned n) { return new char[n]; }
void corpus_arena_free(char* p) { delete[] p; }
