// TP clock-gateway: reading the host clock outside src/obs/.
#include <chrono>
long corpus_stamp() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}
