// TP overlap-memcpy: memcpy in an aliasing-sensitive layer.
#include <cstring>
void corpus_apply(char* dst, const char* src, unsigned n) {
  std::memcpy(dst, src, n);
}
