// TN overlap-memcpy: the overlap-safe primitives are fine.
#include <cstring>
void corpus_apply_safe(char* dst, const char* src, unsigned n) {
  std::memmove(dst, src, n);
  copy_no_overlap(dst, src, n);
}
