// TN layer-edge: every quoted include here is an allowed dependency of
// delta/ (common, mem, obs), same-module, or a system header.
#pragma once
#include <vector>
#include "common/check.h"
#include "delta/tn_overlap_memcpy_helpers.h"
#include "mem/page.h"
#include "obs/metrics.h"
