// TN det-entropy: lookalike identifiers, member calls, and string
// literals.
struct CorpusGen;
int operand(int x);
int corpus_draw(CorpusGen& gen, int x) {
  const char* doc = "rand() is banned in library code";
  (void)doc;
  return gen.rand() + operand(x);
}
