// TP det-entropy: ambient entropy in library code.
#include <cstdlib>
#include <random>
int corpus_jitter() {
  std::random_device rd;
  return rand() + int(rd());
}
