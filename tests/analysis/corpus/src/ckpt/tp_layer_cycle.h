// TP layer-cycle: this header and storage/tp_cycle_peer.h include each
// other, closing a ckpt <-> storage module cycle (this edge is also an
// illegal layer-edge; the peer's edge is policy-legal on its own).
#pragma once
#include "storage/tp_cycle_peer.h"
