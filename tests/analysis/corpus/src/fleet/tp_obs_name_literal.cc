// TP obs-name-literal: inline metric-name literals at instrumentation
// sites outside src/obs/.
struct CorpusRegistry {
  void* counter(const char* name);
  void* gauge(const char* name);
  void* histogram(const char* name);
};

void corpus_instrument(CorpusRegistry& m) {
  m.counter("fleet.corpus.events");
  m.gauge("fleet.corpus.depth");
  m.histogram("fleet.corpus.latency");
}
