// TN obs-name-literal: instrumentation through name constants (the
// obs/names.h idiom) is the sanctioned form.
namespace corpus_names {
inline constexpr const char* kEvents = "fleet.corpus.events";
}

struct CorpusRegistryOk {
  void* counter(const char* name);
};

void corpus_instrument_ok(CorpusRegistryOk& m) {
  m.counter(corpus_names::kEvents);
}
