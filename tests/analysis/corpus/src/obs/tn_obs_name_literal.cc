// TN obs-name-literal: src/obs/ owns the metric-name constants (and its
// own registration plumbing), so literals here are the definition site,
// not a violation.
struct CorpusObsRegistry {
  void* counter(const char* name);
};

void corpus_obs_register(CorpusObsRegistry& m) {
  m.counter("obs.internal.samples");
}
