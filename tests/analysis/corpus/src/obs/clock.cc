// TN det-clock: src/obs/clock.* is the sanctioned host-clock gateway,
// exempt from the rule by design.
#include <ctime>
long corpus_wall_now() { return long(time(nullptr)); }
