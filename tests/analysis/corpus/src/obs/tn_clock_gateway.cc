// TN clock-gateway: src/obs/ is the single host-clock gateway, so the
// rule is exempt here by design.
#include <chrono>
long corpus_obs_stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
