// Accuracy tests for the AIC predictor against synthetic ground truth:
// the forward stepwise fit must pick out the features that actually
// generated the targets (over the {DP, t, JD, DI} expansion), and the
// online normalized-GD refinement must shrink the prediction residuals as
// observations accumulate — measured both directly and through the
// predictor.{c1,dl,ds}.rel_err histograms the decider's report reads.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "predictor/features.h"
#include "predictor/predictor.h"
#include "predictor/regression.h"

namespace aic::predictor {
namespace {

// Feature expansion order (features.h): DP, t, JD, DI, DP^2, t^2, JD^2,
// DI^2, DP*t, DP*JD, DP*DI, t*JD, t*DI, JD*DI.
constexpr std::size_t kIdxDP = 0;
constexpr std::size_t kIdxT = 1;
constexpr std::size_t kIdxTSq = 5;
constexpr std::size_t kIdxDPT = 8;

BaseMetrics random_metrics(Rng& rng) {
  BaseMetrics m;
  m.dirty_pages = rng.uniform(10.0, 500.0);
  m.elapsed = rng.uniform(1.0, 60.0);
  m.jd = rng.uniform(0.0, 1.0);
  m.di = rng.uniform(0.0, 1.0);
  return m;
}

TEST(PredictorAccuracyTest, StepwiseSelectsGeneratingFeatures) {
  // Ground truth y = 3*DP + 0.5*t^2 + 10, with JD/DI pure noise inputs.
  Rng rng(101);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) {
    const BaseMetrics m = random_metrics(rng);
    const auto cand = expand_features(m);
    xs.emplace_back(cand.begin(), cand.end());
    ys.push_back(3.0 * m.dirty_pages + 0.5 * m.elapsed * m.elapsed + 10.0 +
                 rng.uniform(-0.5, 0.5));
  }
  const LinearModel model = stepwise_fit(xs, ys);
  ASSERT_FALSE(model.selected.empty());
  ASSERT_LE(model.selected.size(), 3u);
  const auto has = [&](std::size_t idx) {
    return std::find(model.selected.begin(), model.selected.end(), idx) !=
           model.selected.end();
  };
  EXPECT_TRUE(has(kIdxDP)) << "DP term not selected";
  EXPECT_TRUE(has(kIdxTSq)) << "t^2 term not selected";

  // The fit should actually predict: in-sample relative error small.
  double worst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double err = std::abs(model.predict(xs[i]) - ys[i]) /
                       std::max(std::abs(ys[i]), 1e-9);
    worst = std::max(worst, err);
  }
  EXPECT_LT(worst, 0.10);
}

TEST(PredictorAccuracyTest, StepwiseIgnoresNoiseOnlyCandidates) {
  // Ground truth depends only on DP*t; JD/DI and the other expansions are
  // spurious. The selection must stay small and include the true term.
  Rng rng(202);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) {
    const BaseMetrics m = random_metrics(rng);
    const auto cand = expand_features(m);
    xs.emplace_back(cand.begin(), cand.end());
    ys.push_back(0.02 * m.dirty_pages * m.elapsed + 1.0 +
                 rng.uniform(-0.05, 0.05));
  }
  const LinearModel model = stepwise_fit(xs, ys);
  ASSERT_FALSE(model.selected.empty());
  EXPECT_NE(std::find(model.selected.begin(), model.selected.end(), kIdxDPT),
            model.selected.end())
      << "DP*t term not selected";
}

TEST(PredictorAccuracyTest, OnlineGdShrinksResidualsOverWindows) {
  // The warm-up stepwise fit learns one coefficient set exactly; then the
  // workload drifts (all target coefficients scale by 3x) and the online
  // normalized-GD refinement must track it: pre-update relative errors,
  // averaged over successive windows, shrink after the shift, and the
  // final window is accurate in absolute terms.
  Rng rng(303);
  AicPredictor pred;
  obs::Hub hub;
  pred.set_obs(&hub);

  constexpr int kObservations = 160;
  constexpr int kWindow = 30;
  std::vector<double> rel_err;
  int observed = 0;
  const auto feed = [&](double scale, int count, bool record) {
    for (int i = 0; i < count; ++i) {
      const BaseMetrics m = random_metrics(rng);
      const double c1 = scale * (1e-3 * m.dirty_pages + 0.01);
      const double dl = scale * (5e-4 * m.dirty_pages + 2e-3 * m.elapsed);
      const double ds = scale * (2000.0 * m.dirty_pages + 1e4);
      if (record && pred.warmed_up()) {
        const double p = pred.predict(Target::kC1, m);
        rel_err.push_back(std::abs(p - c1) / std::max(c1, 1e-12));
      }
      pred.observe(m, c1, dl, ds);
      ++observed;
    }
  };
  feed(1.0, int(AicPredictor::kWarmupSamples) + 4, false);
  ASSERT_TRUE(pred.warmed_up());
  feed(3.0, kObservations, true);  // the drift the GD must chase
  ASSERT_GE(rel_err.size(), std::size_t(3 * kWindow));

  const auto window_mean = [&](std::size_t start) {
    double s = 0.0;
    for (std::size_t i = start; i < start + kWindow; ++i) s += rel_err[i];
    return s / kWindow;
  };
  const double first = window_mean(0);
  const double mid = window_mean(rel_err.size() / 2);
  const double last = window_mean(rel_err.size() - kWindow);
  EXPECT_LT(mid, first) << "residuals did not start shrinking after drift";
  EXPECT_LT(last, first) << "residuals did not shrink with observations";
  EXPECT_LT(last, 0.05) << "tracked model is not accurate";

  // The same residuals flowed into the observability histograms.
  const auto snap = hub.metrics.snapshot();
  EXPECT_EQ(snap.counter_or_zero(obs::names::kPredictorObservations),
            std::uint64_t(observed));
  ASSERT_TRUE(snap.histograms.count(obs::names::kPredictorC1RelErr));
  const auto& h = snap.histograms.at(obs::names::kPredictorC1RelErr);
  EXPECT_EQ(h.count, std::uint64_t(observed));
  ASSERT_TRUE(snap.histograms.count(obs::names::kPredictorDlRelErr));
  ASSERT_TRUE(snap.histograms.count(obs::names::kPredictorDsRelErr));
  EXPECT_EQ(snap.histograms.at(obs::names::kPredictorDlRelErr).count,
            std::uint64_t(observed));
}

TEST(PredictorAccuracyTest, SetObsNullDetaches) {
  Rng rng(404);
  AicPredictor pred;
  obs::Hub hub;
  pred.set_obs(&hub);
  pred.set_obs(nullptr);
  const BaseMetrics m = random_metrics(rng);
  pred.observe(m, 1.0, 1.0, 1.0);
  EXPECT_EQ(hub.metrics.snapshot().counter_or_zero(
                obs::names::kPredictorObservations),
            0u);
}

}  // namespace
}  // namespace aic::predictor
