// Failure flight recorder: the bounded event ring, the TraceLog tap (which
// must keep seeing events after the log itself hits capacity), and the
// postmortem.json artifact a dying run leaves behind — including the
// integration paths through the transfer scheduler and failure simulator.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "sim/failure_sim.h"
#include "storage/storage.h"
#include "xfer/scheduler.h"
#include "xfer/staged_sink.h"

namespace aic::obs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "aic_fr_" + name + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(bool(in)) << "missing " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TraceEvent instant_event(const char* name, double t) {
  TraceEvent e;
  e.category = names::kCatXfer;
  e.name = name;
  e.phase = TraceEvent::Phase::kInstant;
  e.start = t;
  return e;
}

TEST(FlightRecorder, RingKeepsTheNewestEvents) {
  FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i) {
    fr.record(instant_event("tick", double(i)));
  }
  EXPECT_EQ(fr.total_recorded(), 10u);
  const auto tail = fr.recent();
  ASSERT_EQ(tail.size(), 4u);
  // Oldest -> newest: events 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(tail[std::size_t(i)].start, double(6 + i));
  }
}

TEST(FlightRecorder, TapOutlivesTraceLogCapacity) {
  Hub hub(/*trace_capacity=*/8);
  FlightRecorder& fr = hub.enable_flight_recorder(/*capacity=*/16);
  for (int i = 0; i < 30; ++i) {
    hub.trace.instant(TimeDomain::kVirtual, names::kCatXfer, "ev", double(i));
  }
  EXPECT_EQ(hub.trace.size(), 8u);
  EXPECT_GT(hub.trace.dropped(), 0u) << "log must be past capacity";
  // The tap sits before the capacity check: it saw every event, and its
  // tail is the run's END, not where the log gave up.
  EXPECT_EQ(fr.total_recorded(), 30u);
  const auto tail = fr.recent();
  ASSERT_EQ(tail.size(), 16u);
  EXPECT_DOUBLE_EQ(tail.back().start, 29.0);
}

TEST(FlightRecorder, PostmortemJsonIsSchemaValid) {
  Hub hub;
  FlightRecorder& fr = hub.enable_flight_recorder(4);
  hub.metrics.counter("xfer.retries")->add(7);
  for (int i = 0; i < 6; ++i) {
    hub.trace.instant(TimeDomain::kVirtual, names::kCatXfer,
                      names::kEvAbort, double(i), 3,
                      {{"offset", 65536.0}});
  }
  const JsonValue doc =
      json_parse(fr.postmortem_json("unit-test", "why it died"));
  EXPECT_EQ(doc.at("schema").str, kPostmortemSchema);
  EXPECT_EQ(doc.at("reason").str, "unit-test");
  EXPECT_EQ(doc.at("detail").str, "why it died");
  EXPECT_DOUBLE_EQ(doc.at("events_total").as_number(), 6.0);
  const JsonValue& events = doc.at("events");
  ASSERT_EQ(events.array.size(), 4u);  // ring capacity
  const JsonValue& last = events.array.back();
  EXPECT_EQ(last.at("cat").str, "xfer");
  EXPECT_EQ(last.at("name").str, "abort");
  EXPECT_EQ(last.at("phase").str, "instant");
  EXPECT_DOUBLE_EQ(last.at("t").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(last.at("args").at("offset").as_number(), 65536.0);
  // Metrics ride along, via the normal metrics_to_json schema.
  EXPECT_DOUBLE_EQ(
      doc.at("metrics").at("counters").at("xfer.retries").as_number(), 7.0);
}

TEST(FlightRecorder, DumpWritesTheFile) {
  const std::string path = temp_path("dump");
  std::remove(path.c_str());
  FlightRecorder fr(4);
  fr.set_dump_path(path);
  fr.record(instant_event("tick", 1.0));
  ASSERT_TRUE(fr.dump("unit-test", "detail"));
  const JsonValue doc = json_parse(slurp(path));
  EXPECT_EQ(doc.at("reason").str, "unit-test");
  std::remove(path.c_str());
  // Unwritable path: reports failure instead of throwing.
  fr.set_dump_path("/nonexistent-dir/x/postmortem.json");
  EXPECT_FALSE(fr.dump("unit-test", "detail"));
}

TEST(FlightRecorder, MidDrainAbortLeavesParseablePostmortem) {
  const std::string path = temp_path("xfer");
  std::remove(path.c_str());

  Hub hub;
  hub.enable_flight_recorder(64, path);

  storage::RemoteStore target(1e12);
  xfer::StagedTargetSink sink(target);
  xfer::TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  cfg.retry.max_attempts_per_chunk = 2;
  cfg.obs = &hub;
  xfer::TransferScheduler sched(cfg);
  sched.add_level(3, {1e6, 0.0}, &sink);
  // Two clean chunks, then the whole attempt budget drops: the drain
  // exhausts its retries mid-flight.
  sched.channel(3).inject({xfer::FaultKind::kStall, 0.0, 0.0});
  sched.channel(3).inject({xfer::FaultKind::kStall, 0.0, 0.0});
  sched.channel(3).inject_drops(2);

  const xfer::TransferId id = sched.submit(3, "doomed", Bytes(500, 0xab));
  sched.run_until_idle();

  std::string detail;
  try {
    sched.rethrow_if_aborted(id);
    FAIL() << "drain must abort";
  } catch (const xfer::TransferError& e) {
    EXPECT_EQ(e.level(), 3);
    EXPECT_EQ(e.chunk_offset(), 200u);
    detail = e.what();
    ASSERT_TRUE(hub.dump_postmortem("xfer-abort", detail));
  }

  const JsonValue doc = json_parse(slurp(path));
  EXPECT_EQ(doc.at("reason").str, "xfer-abort");
  // The interrupting failure is named: level and chunk offset.
  EXPECT_NE(doc.at("detail").str.find("level 3"), std::string::npos);
  EXPECT_NE(doc.at("detail").str.find("chunk offset 200"),
            std::string::npos);
  // And the recent-events tail contains the abort instant at that offset.
  bool saw_abort = false;
  for (const JsonValue& e : doc.at("events").array) {
    if (e.at("name").str == names::kEvAbort) {
      saw_abort = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("offset").as_number(), 200.0);
      EXPECT_DOUBLE_EQ(e.at("track").as_number(), 3.0);
    }
  }
  EXPECT_TRUE(saw_abort) << "abort event must be in the retained tail";
  std::remove(path.c_str());
}

TEST(FlightRecorder, FailureSimDyingMidDrainDumpsPostmortem) {
  const std::string path = temp_path("sim");
  std::remove(path.c_str());

  Hub hub;
  hub.enable_flight_recorder(128, path);

  sim::FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures = failure::FailureSpec::from_total(0.01);
  cfg.checkpoint_interval = 10.0;
  cfg.seed = 3;
  cfg.use_transfer_engine = true;
  cfg.obs = &hub;
  // Nearly every remote chunk drops and the budget is tiny: the first L3
  // drain dies mid-flight with a TransferError (deterministic — the
  // channel noise is seeded from cfg.seed).
  cfg.remote_drop_probability = 0.95;
  cfg.xfer_max_attempts_override = 2;

  EXPECT_THROW(sim::run_failure_sim(cfg), xfer::TransferError);

  const JsonValue doc = json_parse(slurp(path));
  EXPECT_EQ(doc.at("reason").str, "failure-sim");
  EXPECT_NE(doc.at("detail").str.find("level 3"), std::string::npos);
  EXPECT_NE(doc.at("detail").str.find("chunk offset"), std::string::npos);
  ASSERT_FALSE(doc.at("events").array.empty());
  bool saw_abort = false;
  for (const JsonValue& e : doc.at("events").array) {
    if (e.at("name").str == names::kEvAbort) saw_abort = true;
  }
  EXPECT_TRUE(saw_abort)
      << "the interrupting failure must be in the event tail";
  std::remove(path.c_str());
}

TEST(FlightRecorderDeathTest, TerminateHookDumpsBeforeDying) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("terminate");
  std::remove(path.c_str());
  // The throw happens on a separate thread: gtest wraps the death-test
  // statement in a try/catch on the calling thread, which would intercept
  // a local throw before it ever reached std::terminate. An exception
  // escaping another thread has no such safety net — exactly the
  // worker-thread crash the hook exists for.
  EXPECT_DEATH(
      {
        FlightRecorder fr(8);
        fr.set_dump_path(path);
        fr.record(instant_event("last-breath", 1.0));
        FlightRecorder::install_terminate_hook(&fr);
        std::thread([] {
          throw CheckError("unhandled invariant failure");
        }).join();
      },
      "");
  // The child dumped on its way down; the artifact is readable here.
  const JsonValue doc = json_parse(slurp(path));
  EXPECT_EQ(doc.at("reason").str, "uncaught-exception");
  EXPECT_NE(doc.at("detail").str.find("unhandled invariant failure"),
            std::string::npos);
  ASSERT_EQ(doc.at("events").array.size(), 1u);
  EXPECT_EQ(doc.at("events").array[0].at("name").str, "last-breath");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aic::obs
