// Tests for the concurrent checkpointing core (ckpt::AsyncCheckpointer):
// the application keeps mutating while the worker compresses; restores
// must reflect exactly the state at each submit, never the in-flight
// mutations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "ckpt/async_checkpointer.h"
#include "common/rng.h"
#include "mem/snapshot.h"
#include "workload/workload.h"

namespace aic::ckpt {
namespace {

void random_fill(mem::AddressSpace& space, mem::PageId id, Rng& rng) {
  space.mutate(id, [&](std::span<std::uint8_t> b) {
    for (auto& x : b) x = std::uint8_t(rng());
  });
}

TEST(AsyncCheckpointer, FirstSubmitIsFullAndRestores) {
  mem::AddressSpace space;
  space.allocate_range(0, 64);
  Rng rng(1);
  for (mem::PageId id = 0; id < 64; ++id) random_fill(space, id, rng);
  const mem::Snapshot expected = mem::Snapshot::capture(space);

  AsyncCheckpointer::Config cfg;
  AsyncCheckpointer async(std::move(cfg));
  async.submit(space, {}, 0.0);
  auto restored = async.restore();
  EXPECT_TRUE(expected.equals_space(restored.memory.materialize()));
  EXPECT_EQ(async.completed(), 1u);
}

TEST(AsyncCheckpointer, MutationsAfterSubmitDoNotLeakIn) {
  mem::AddressSpace space;
  space.allocate_range(0, 32);
  Rng rng(2);
  for (mem::PageId id = 0; id < 32; ++id) random_fill(space, id, rng);

  AsyncCheckpointer async({});
  async.submit(space, {}, 0.0);

  // Interval 1: edit page 3, submit, then IMMEDIATELY keep scribbling on
  // the same page while the worker may still be compressing.
  Bytes edit = {0xAA, 0xBB, 0xCC};
  space.write(3, 100, edit);
  const mem::Snapshot at_submit = mem::Snapshot::capture(space);
  async.submit(space, {}, 1.0);
  for (int burst = 0; burst < 200; ++burst) random_fill(space, 3, rng);

  auto restored = async.restore();
  EXPECT_TRUE(at_submit.equals_space(restored.memory.materialize()))
      << "the checkpoint must reflect submit-time state, not later writes";
}

TEST(AsyncCheckpointer, PipelinedSubmitsLandInOrder) {
  mem::AddressSpace space;
  space.allocate_range(0, 128);
  Rng rng(3);
  for (mem::PageId id = 0; id < 128; ++id) random_fill(space, id, rng);

  std::atomic<int> completions{0};
  std::atomic<std::uint64_t> last_sequence{0};
  std::atomic<bool> ordered{true};
  AsyncCheckpointer::Config cfg;
  cfg.on_complete = [&](const AsyncResult& r) {
    if (completions.load() > 0 && r.sequence <= last_sequence.load())
      ordered = false;
    last_sequence = r.sequence;
    ++completions;
  };
  AsyncCheckpointer async(std::move(cfg));

  async.submit(space, {}, 0.0);
  mem::Snapshot latest = mem::Snapshot::capture(space);
  for (int interval = 1; interval <= 8; ++interval) {
    for (int e = 0; e < 30; ++e)
      random_fill(space, rng.uniform_u64(128), rng);
    latest = mem::Snapshot::capture(space);
    async.submit(space, {}, double(interval));
  }
  auto restored = async.restore();
  EXPECT_EQ(completions.load(), 9);
  EXPECT_TRUE(ordered.load()) << "completions must be in sequence order";
  EXPECT_TRUE(latest.equals_space(restored.memory.materialize()));
  EXPECT_DOUBLE_EQ(restored.app_time, 8.0);
}

TEST(AsyncCheckpointer, CompletionCarriesCompressionAccounting) {
  mem::AddressSpace space;
  space.allocate_range(0, 32);
  Rng rng(4);
  for (mem::PageId id = 0; id < 32; ++id) random_fill(space, id, rng);

  std::atomic<std::uint64_t> delta_bytes{0};
  std::atomic<std::uint64_t> kinds_full{0};
  AsyncCheckpointer::Config cfg;
  cfg.on_complete = [&](const AsyncResult& r) {
    if (r.stats.kind == CheckpointKind::kFull) ++kinds_full;
    delta_bytes += r.stats.file_bytes;
  };
  AsyncCheckpointer async(std::move(cfg));
  async.submit(space, {}, 0.0);
  Bytes edit = {1, 2, 3};
  space.write(7, 0, edit);
  async.submit(space, {}, 1.0);
  async.drain();
  EXPECT_EQ(kinds_full.load(), 1u);
  EXPECT_GT(delta_bytes.load(), 32 * kPageSize / 2);  // the full dominates
}

TEST(AsyncCheckpointer, WorksUnderRealWorkloadChurn) {
  auto wl = workload::make_spec_workload(workload::SpecBenchmark::kBzip2,
                                         0.125);
  mem::AddressSpace space;
  wl->initialize(space);

  AsyncCheckpointer async({});
  async.submit(space, wl->cpu_state(), 0.0);
  mem::Snapshot at_last_submit = mem::Snapshot::capture(space);
  double t = 0.0;
  for (int i = 0; i < 6; ++i) {
    wl->step(space, 5.0);
    t += 5.0;
    at_last_submit = mem::Snapshot::capture(space);
    async.submit(space, wl->cpu_state(), t);
    wl->step(space, 2.0);  // keep computing while the worker compresses
    t += 2.0;
  }
  auto restored = async.restore();
  EXPECT_TRUE(at_last_submit.equals_space(restored.memory.materialize()));
}

TEST(AsyncCheckpointer, PeriodicFullSchedule) {
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  std::atomic<int> fulls{0};
  AsyncCheckpointer::Config cfg;
  cfg.chain.full_period = 2;  // full, inc, inc, full, inc, inc, ...
  cfg.on_complete = [&](const AsyncResult& r) {
    fulls += (r.stats.kind == CheckpointKind::kFull);
  };
  AsyncCheckpointer async(std::move(cfg));
  Rng rng(5);
  for (int i = 0; i < 7; ++i) {
    random_fill(space, rng.uniform_u64(16), rng);
    async.submit(space, {}, double(i));
  }
  async.drain();
  EXPECT_EQ(fulls.load(), 3);  // sequences 0, 3, 6
}

}  // namespace
}  // namespace aic::ckpt
