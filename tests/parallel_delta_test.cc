// Tests for the sharded delta-compression pipeline: the common/ThreadPool
// primitive, the ParallelPageCompressor's determinism invariant (byte-
// identical payload and identical stats vs the serial compressor at every
// worker count), the unchanged-page fast path and its record kind across
// chain restore, and buffer reuse across checkpoints.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "ckpt/async_checkpointer.h"
#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "delta/page_delta.h"
#include "delta/parallel_page_delta.h"
#include "mem/address_space.h"
#include "mem/snapshot.h"

namespace aic::delta {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

// ---- ThreadPool ----

TEST(ThreadPool, RunsEveryTask) {
  common::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.run([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  common::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 8; ++i) pool.run([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 8);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  common::ThreadPool pool(3);
  pool.wait_idle();  // nothing queued: must not hang
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    common::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) pool.run([&count] { ++count; });
    // No wait_idle: destruction must still run everything enqueued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DefaultWorkersAtLeastOne) {
  EXPECT_GE(common::ThreadPool::default_workers(), 1u);
}

// ---- parallel-vs-serial equivalence ----

/// Builds a previous snapshot plus a messy dirty set: partial edits, full
/// rewrites, identical rewrites (fast-path candidates), and new pages.
struct Evolution {
  mem::AddressSpace space;
  mem::Snapshot prev;
  std::vector<DirtyPage> dirty;

  explicit Evolution(Rng& rng, std::size_t pages = 48) {
    space.allocate_range(0, pages);
    for (mem::PageId id = 0; id < pages; ++id) {
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    prev = mem::Snapshot::capture(space);
    space.protect_all();
    for (int e = 0; e < 60; ++e) {
      mem::PageId id = rng.uniform_u64(pages + 8);
      if (!space.contains(id)) {
        space.allocate(id);  // new page: raw record
        continue;
      }
      switch (rng.uniform_u64(4)) {
        case 0: {  // identical rewrite: dirty but unchanged (fast path)
          Bytes same(space.page_bytes(id).begin(),
                     space.page_bytes(id).end());
          space.write(id, 0, same);
          break;
        }
        case 1:  // full rewrite: delta likely expands to raw
          space.mutate(id, [&](std::span<std::uint8_t> b) {
            for (auto& x : b) x = std::uint8_t(rng());
          });
          break;
        default: {  // partial edit: delta record
          std::size_t len = 1 + rng.uniform_u64(1024);
          std::size_t off = rng.uniform_u64(kPageSize - len);
          space.write(id, off, random_bytes(rng, len));
          break;
        }
      }
    }
    for (auto id : space.dirty_pages())
      dirty.push_back({id, space.page_bytes(id)});
  }
};

TEST(ParallelPageCompressor, ByteIdenticalToSerialAtEveryWorkerCount) {
  Rng rng(21);
  PageAlignedCompressor serial;
  for (int trial = 0; trial < 3; ++trial) {
    Evolution ev(rng);
    DeltaResult want = serial.compress(ev.dirty, ev.prev);
    for (unsigned workers = 1; workers <= 8; ++workers) {
      ParallelPageCompressor pc({.workers = workers, .min_shard_pages = 1});
      DeltaResult got = pc.compress(ev.dirty, ev.prev);
      ASSERT_EQ(got.payload, want.payload)
          << "workers=" << workers << " trial=" << trial;
      EXPECT_EQ(got.stats.input_bytes, want.stats.input_bytes);
      EXPECT_EQ(got.stats.source_bytes, want.stats.source_bytes);
      EXPECT_EQ(got.stats.output_bytes, want.stats.output_bytes);
      EXPECT_EQ(got.stats.work_units, want.stats.work_units);
      EXPECT_EQ(got.stats.copy_ops, want.stats.copy_ops);
      EXPECT_EQ(got.stats.add_ops, want.stats.add_ops);
      EXPECT_EQ(got.pages_total, want.pages_total);
      EXPECT_EQ(got.pages_delta, want.pages_delta);
      EXPECT_EQ(got.pages_raw, want.pages_raw);
      EXPECT_EQ(got.pages_same, want.pages_same);
    }
  }
}

TEST(ParallelPageCompressor, RoundTripsThroughSerialDecompress) {
  Rng rng(22);
  Evolution ev(rng);
  ParallelPageCompressor pc({.workers = 4, .min_shard_pages = 1});
  DeltaResult res = pc.compress(ev.dirty, ev.prev);
  mem::Snapshot restored = pc.decompress(res.payload, ev.prev);
  ASSERT_EQ(restored.page_count(), ev.dirty.size());
  for (const DirtyPage& d : ev.dirty) {
    ASSERT_TRUE(restored.contains(d.id));
    EXPECT_EQ(0, std::memcmp(restored.page_bytes(d.id).data(),
                             d.bytes.data(), kPageSize));
  }
}

TEST(ParallelPageCompressor, CorrectingModeByteIdenticalAndMovesDetected) {
  // Correcting mode adds a shared input to every shard — the MoveIndex
  // over prev — so byte-identity needs it built once before sharding.
  // Exercise it with a workload rich in whole-page moves (cdelta records
  // referencing other pages) straddling shard boundaries.
  Rng rng(23);
  PageAlignedCompressor serial({}, /*correcting=*/true);
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t pages = 48;
    mem::AddressSpace space;
    space.allocate_range(0, pages);
    for (mem::PageId id = 0; id < pages; ++id) {
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    const mem::Snapshot prev = mem::Snapshot::capture(space);
    space.protect_all();
    // A band of whole-page moves: page id takes page (id - 5)'s old image.
    for (mem::PageId id = 8; id < 24; ++id) {
      Bytes moved(prev.page_bytes(id - 5).begin(),
                  prev.page_bytes(id - 5).end());
      space.write(id, 0, moved);
    }
    // Plus ordinary churn: partial edits and fresh pages.
    for (int e = 0; e < 20; ++e) {
      const mem::PageId id = rng.uniform_u64(pages + 6);
      if (!space.contains(id)) {
        space.allocate(id);
        continue;
      }
      const std::size_t len = 1 + rng.uniform_u64(512);
      space.write(id, rng.uniform_u64(kPageSize - len),
                  random_bytes(rng, len));
    }
    std::vector<DirtyPage> dirty;
    for (auto id : space.dirty_pages())
      dirty.push_back({id, space.page_bytes(id)});

    DeltaResult want = serial.compress(dirty, prev);
    EXPECT_GT(want.pages_moved, 0u) << "trial=" << trial;
    for (unsigned workers = 1; workers <= 8; ++workers) {
      ParallelPageCompressor pc(
          {.correcting = true, .workers = workers, .min_shard_pages = 1});
      ASSERT_TRUE(pc.correcting());
      DeltaResult got = pc.compress(dirty, prev);
      ASSERT_EQ(got.payload, want.payload)
          << "workers=" << workers << " trial=" << trial;
      EXPECT_EQ(got.pages_moved, want.pages_moved);
      EXPECT_EQ(got.pages_delta, want.pages_delta);
      EXPECT_EQ(got.pages_raw, want.pages_raw);
      EXPECT_EQ(got.pages_same, want.pages_same);
      EXPECT_EQ(got.stats.output_bytes, want.stats.output_bytes);
    }
    // The stitched payload must also replay.
    mem::Snapshot restored = serial.decompress(want.payload, prev);
    for (const DirtyPage& d : dirty) {
      ASSERT_TRUE(restored.contains(d.id));
      EXPECT_EQ(0, std::memcmp(restored.page_bytes(d.id).data(),
                               d.bytes.data(), kPageSize));
    }
  }
}

TEST(ParallelPageCompressor, BufferPoolReusedAcrossCheckpoints) {
  // One long-lived compressor over several evolving checkpoints must keep
  // matching the serial output (shard scratch buffers are cleared, not
  // stale, between calls).
  Rng rng(23);
  PageAlignedCompressor serial;
  ParallelPageCompressor pc({.workers = 3, .min_shard_pages = 1});
  for (int ckpt = 0; ckpt < 5; ++ckpt) {
    Evolution ev(rng, 16 + 8 * std::size_t(ckpt));
    DeltaResult want = serial.compress(ev.dirty, ev.prev);
    DeltaResult got = pc.compress(ev.dirty, ev.prev);
    ASSERT_EQ(got.payload, want.payload) << "checkpoint " << ckpt;
  }
}

TEST(ParallelPageCompressor, SmallDirtySetEncodesInline) {
  // Below workers * min_shard_pages the pipeline must not shard (and must
  // still be byte-identical — trivially, it IS the serial path).
  Rng rng(24);
  Evolution ev(rng, 4);
  ParallelPageCompressor pc({.workers = 8, .min_shard_pages = 64});
  PageAlignedCompressor serial;
  EXPECT_EQ(pc.compress(ev.dirty, ev.prev).payload,
            serial.compress(ev.dirty, ev.prev).payload);
}

TEST(ParallelPageCompressor, EmptyDirtySet) {
  ParallelPageCompressor pc({.workers = 4, .min_shard_pages = 1});
  mem::Snapshot prev;
  DeltaResult res = pc.compress({}, prev);
  EXPECT_EQ(res.pages_total, 0u);
  mem::Snapshot restored = pc.decompress(res.payload, prev);
  EXPECT_EQ(restored.page_count(), 0u);
}

// ---- unchanged-page fast path ----

TEST(UnchangedFastPath, IdenticalPageEmitsZeroCostRecord) {
  Rng rng(25);
  mem::AddressSpace space;
  space.allocate_range(0, 2);
  for (mem::PageId id = 0; id < 2; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  // Rewrite page 0 with its own bytes: dirty, but bit-identical.
  Bytes same(space.page_bytes(0).begin(), space.page_bytes(0).end());
  space.write(0, 0, same);

  PageAlignedCompressor pa;
  std::vector<DirtyPage> dirty{{0, space.page_bytes(0)}};
  DeltaResult res = pa.compress(dirty, prev);
  EXPECT_EQ(res.pages_same, 1u);
  EXPECT_EQ(res.pages_delta, 0u);
  EXPECT_EQ(res.pages_raw, 0u);
  // Record is count + id + kind: a handful of bytes, no codec output.
  EXPECT_LE(res.payload.size(), 12u);
  // Charged as one page of compare work, far below a codec pass.
  EXPECT_EQ(res.stats.work_units, kPageSize);

  mem::Snapshot restored = pa.decompress(res.payload, prev);
  ASSERT_TRUE(restored.contains(0));
  EXPECT_EQ(0, std::memcmp(restored.page_bytes(0).data(),
                           space.page_bytes(0).data(), kPageSize));
}

TEST(UnchangedFastPath, MissingPrevPageRejectedOnDecode) {
  Rng rng(26);
  mem::AddressSpace space;
  space.allocate(5);
  space.mutate(5, [&](std::span<std::uint8_t> b) {
    for (auto& x : b) x = std::uint8_t(rng());
  });
  mem::Snapshot prev = mem::Snapshot::capture(space);
  PageAlignedCompressor pa;
  std::vector<DirtyPage> dirty{{5, space.page_bytes(5)}};
  DeltaResult res = pa.compress(dirty, prev);
  ASSERT_EQ(res.pages_same, 1u);
  mem::Snapshot empty;
  EXPECT_THROW((void)pa.decompress(res.payload, empty), CheckError);
}

TEST(UnchangedFastPath, RoundTripsAcrossChainRestore) {
  // Full checkpoint, then an incremental whose dirty set mixes unchanged
  // pages (fast-path records) with real edits; the chain restore must
  // reproduce the exact submit-time state through the new record kind.
  Rng rng(27);
  mem::AddressSpace space;
  space.allocate_range(0, 12);
  for (mem::PageId id = 0; id < 12; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::CheckpointChain chain;
  chain.capture(space, {}, 0.0);
  space.protect_all();

  // Pages 0..3 rewritten identical; pages 4,5 genuinely edited.
  for (mem::PageId id = 0; id < 4; ++id) {
    Bytes same(space.page_bytes(id).begin(), space.page_bytes(id).end());
    space.write(id, 0, same);
  }
  space.write(4, 77, random_bytes(rng, 64));
  space.write(5, 900, random_bytes(rng, 256));

  ckpt::CaptureStats st = chain.capture(space, {}, 1.0);
  EXPECT_EQ(st.pages_same, 4u);
  EXPECT_GE(st.pages_delta, 2u);

  auto restored = chain.restore();
  EXPECT_TRUE(mem::Snapshot::capture(space).equals_space(
      restored.memory.materialize()));
}

TEST(UnchangedFastPath, RoundTripsThroughAsyncCheckpointer) {
  Rng rng(28);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  for (mem::PageId id = 0; id < 16; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::AsyncCheckpointer::Config cfg;
  cfg.chain.compress_workers = 4;
  ckpt::AsyncCheckpointer async(std::move(cfg));
  async.submit(space, {}, 0.0);

  // Interval 1: one identical rewrite + one real edit.
  Bytes same(space.page_bytes(9).begin(), space.page_bytes(9).end());
  space.write(9, 0, same);
  space.write(2, 500, random_bytes(rng, 128));
  const mem::Snapshot at_submit = mem::Snapshot::capture(space);
  async.submit(space, {}, 1.0);

  auto restored = async.restore();
  EXPECT_TRUE(at_submit.equals_space(restored.memory.materialize()));
}

// ---- chain-level determinism across worker counts ----

TEST(CheckpointChain, ParallelWorkersProduceIdenticalFiles) {
  const auto run = [](unsigned workers) {
    Rng rng(29);  // same seed: same mutation script per run
    mem::AddressSpace space;
    space.allocate_range(0, 40);
    for (mem::PageId id = 0; id < 40; ++id) {
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    ckpt::CheckpointChain::Config cfg;
    cfg.full_period = 3;
    cfg.compress_workers = workers;
    ckpt::CheckpointChain chain(cfg);
    for (int i = 0; i < 8; ++i) {
      chain.capture(space, {}, double(i));
      space.protect_all();
      for (int e = 0; e < 12; ++e) {
        mem::PageId id = rng.uniform_u64(40);
        space.write(id, rng.uniform_u64(kPageSize - 64),
                    random_bytes(rng, 64));
      }
    }
    return chain;
  };

  ckpt::CheckpointChain serial = run(1);
  ckpt::CheckpointChain parallel = run(4);
  ASSERT_EQ(serial.files().size(), parallel.files().size());
  for (std::size_t i = 0; i < serial.files().size(); ++i) {
    EXPECT_EQ(serial.files()[i].payload, parallel.files()[i].payload)
        << "file " << i;
    EXPECT_EQ(serial.files()[i].kind, parallel.files()[i].kind);
  }
}

}  // namespace
}  // namespace aic::delta
