// Property suite for the RewindWindow discard schedule: the competitive
// bound max_gap(T) <= C_k * T/(k+1) + S_k*delta_max must hold at EVERY
// prefix of EVERY arrival sequence, for every budget k in {2..10}. The
// suite drives >= 1000 seeded randomized sequences through six generator
// families (uniform, jittered, bursty, Poisson, drought, geometric
// horizon growth — the adversarial shapes that break naive schedules) and
// asserts the bound after each admit.
//
// The bound is only worth shipping if it can FAIL: the mutation checks
// run two deliberately broken discard policies (always-discard-oldest,
// pin-the-prefix) through the same harness and require a violation for
// every k >= 3. At k = 2 the constant C_2 = 3 makes the envelope as wide
// as the horizon itself, so no schedule can be rejected there — the bound
// check still runs at k = 2, the mutation check starts at 3 (documented
// in DESIGN.md §16).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "ckpt/rewind_window.h"
#include "common/rng.h"

namespace aic::ckpt {
namespace {

constexpr int kStyles = 6;

std::vector<double> make_arrivals(int style, std::size_t n, Rng& rng) {
  std::vector<double> times;
  times.reserve(n);
  double t = 0.0;
  switch (style) {
    case 0: {  // uniform spacing
      const double d = rng.uniform(0.5, 5.0);
      for (std::size_t i = 0; i < n; ++i) times.push_back(t += d);
      break;
    }
    case 1: {  // jittered uniform
      const double d = rng.uniform(0.5, 5.0);
      for (std::size_t i = 0; i < n; ++i) {
        times.push_back(t += d * rng.uniform(0.25, 1.75));
      }
      break;
    }
    case 2: {  // bursty: dense clusters separated by long quiet stretches
      while (times.size() < n) {
        const std::uint64_t burst = 1 + rng.uniform_u64(8);
        for (std::uint64_t i = 0; i < burst && times.size() < n; ++i) {
          times.push_back(t += rng.uniform(0.01, 0.1));
        }
        t += rng.uniform(5.0, 50.0);
      }
      break;
    }
    case 3: {  // Poisson arrivals
      const double lambda = rng.uniform(0.2, 2.0);
      for (std::size_t i = 0; i < n; ++i) {
        times.push_back(t += rng.exponential(lambda));
      }
      break;
    }
    case 4: {  // droughts: uniform cadence with rare huge gaps
      const double d = rng.uniform(0.5, 2.0);
      for (std::size_t i = 0; i < n; ++i) {
        t += rng.bernoulli(0.05) ? d * rng.uniform(20.0, 100.0) : d;
        times.push_back(t);
      }
      break;
    }
    default: {  // geometric horizon growth: stresses repeated era flips
      const double c = rng.uniform(1.05, 2.5);
      t = rng.uniform(0.1, 1.0);
      for (std::size_t i = 0; i < n; ++i) {
        times.push_back(t);
        t *= c;
      }
      break;
    }
  }
  return times;
}

/// Reference harness shared with the mutation checks: feed `times` into a
/// discard policy (any callable: admit a time, return the retained set)
/// and report whether the competitive bound was ever violated.
template <typename Policy>
bool bound_violated(const std::vector<double>& times, std::size_t k,
                    Policy&& policy) {
  double last = 0.0;
  double delta_max = 0.0;
  for (double t : times) {
    delta_max = std::max(delta_max, t - last);
    last = t;
    const std::vector<double>& retained = policy(t);
    double prev = 0.0;
    double gap = 0.0;
    for (double rt : retained) {
      gap = std::max(gap, rt - prev);
      prev = rt;
    }
    gap = std::max(gap, t - prev);
    const double bound = RewindWindow::bound_factor(k) * t / double(k + 1) +
                         RewindWindow::slack_factor(k) * delta_max;
    if (gap > bound + 1e-9) return true;
  }
  return false;
}

TEST(RewindProperty, GapStaysWithinCompetitiveBound) {
  int trials = 0;
  for (std::size_t k = 2; k <= 10; ++k) {
    for (int style = 0; style < kStyles; ++style) {
      for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(0xB61D + seed * 977 + k * 131 + std::uint64_t(style));
        const std::vector<double> times = make_arrivals(style, 200, rng);
        RewindWindow w(k);
        std::uint64_t seq = 0;
        for (double t : times) {
          w.admit(seq++, t);
          ASSERT_LE(w.size(), k);
          const double gap = w.max_gap(t);
          const double bound = w.gap_bound(t);
          ASSERT_LE(gap, bound + 1e-9)
              << "k=" << k << " style=" << style << " seed=" << seed
              << " t=" << t << " gap=" << gap << " bound=" << bound;
        }
        ++trials;
      }
    }
  }
  // The ISSUE contract: at least a thousand seeded trials.
  EXPECT_GE(trials, 1000);
}

// Broken schedule #1: always discard the oldest retained checkpoint. The
// retained set collapses to the trailing k arrivals, so the leading gap
// [0, oldest] grows like the horizon itself — ratio k+1 against the
// optimum, outside the envelope for every k >= 3.
TEST(RewindProperty, MutationDiscardOldestIsRejected) {
  for (std::size_t k = 3; k <= 10; ++k) {
    Rng rng(0xD15C + k);
    const std::vector<double> times = make_arrivals(0, 300, rng);
    std::vector<double> retained;
    const bool violated =
        bound_violated(times, k, [&](double t) -> const std::vector<double>& {
          retained.push_back(t);
          if (retained.size() > k) retained.erase(retained.begin());
          return retained;
        });
    EXPECT_TRUE(violated) << "discard-oldest survived the bound at k=" << k;
  }
}

// Broken schedule #2: pin the first k-1 arrivals forever and keep only
// the newest beyond them. The interior gap [last pinned, newest] grows
// with the horizon.
TEST(RewindProperty, MutationPinnedPrefixIsRejected) {
  for (std::size_t k = 3; k <= 10; ++k) {
    Rng rng(0x91AA + k);
    const std::vector<double> times = make_arrivals(0, 300, rng);
    std::vector<double> retained;
    const bool violated =
        bound_violated(times, k, [&](double t) -> const std::vector<double>& {
          if (retained.size() < k) {
            retained.push_back(t);
          } else {
            retained.back() = t;
          }
          return retained;
        });
    EXPECT_TRUE(violated) << "pinned-prefix survived the bound at k=" << k;
  }
}

// The shipped schedule run through the exact same external harness as the
// mutants (no private state consulted): it must survive where they fail.
TEST(RewindProperty, ShippedScheduleSurvivesTheMutantHarness) {
  for (std::size_t k = 3; k <= 10; ++k) {
    for (int style = 0; style < kStyles; ++style) {
      Rng rng(0x5AFE + k * 17 + std::uint64_t(style));
      const std::vector<double> times = make_arrivals(style, 300, rng);
      RewindWindow w(k);
      std::uint64_t seq = 0;
      std::vector<double> retained;
      const bool violated = bound_violated(
          times, k, [&](double t) -> const std::vector<double>& {
            w.admit(seq++, t);
            retained.clear();
            for (const RewindWindow::Entry& e : w.live()) {
              retained.push_back(e.time);
            }
            return retained;
          });
      EXPECT_FALSE(violated) << "k=" << k << " style=" << style;
    }
  }
}

TEST(RewindWindowTest, NeverEvictsTheNewestCheckpoint) {
  for (int style = 0; style < kStyles; ++style) {
    Rng rng(0xF00D + std::uint64_t(style));
    const std::vector<double> times = make_arrivals(style, 200, rng);
    RewindWindow w(4);
    std::uint64_t seq = 0;
    for (double t : times) {
      const std::uint64_t s = seq++;
      auto victim = w.admit(s, t, 100 + s);
      if (victim.has_value()) {
        EXPECT_LT(victim->sequence, s);
        EXPECT_LE(victim->time, t);
      }
      EXPECT_EQ(w.live().back().sequence, s);
    }
  }
}

TEST(RewindWindowTest, IsDeterministic) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    const std::vector<double> times = make_arrivals(2, 150, rng);
    RewindWindow w(5);
    std::vector<std::uint64_t> evictions;
    std::uint64_t seq = 0;
    for (double t : times) {
      if (auto v = w.admit(seq++, t)) evictions.push_back(v->sequence);
    }
    return std::pair(evictions, w.live_sequences());
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(RewindWindowTest, TracksBytesAndDiscards) {
  RewindWindow w(3);
  std::uint64_t admitted = 0;
  std::uint64_t evicted = 0;
  for (std::uint64_t s = 0; s < 40; ++s) {
    admitted += 10 * (s + 1);
    if (auto v = w.admit(s, double(s + 1), 10 * (s + 1))) {
      evicted += v->bytes;
    }
  }
  EXPECT_EQ(w.live_bytes(), admitted - evicted);
  EXPECT_EQ(w.discards(), 40 - w.size());
  EXPECT_EQ(w.size(), 3u);
}

TEST(RewindWindowTest, BudgetZeroDisablesTheWindow) {
  RewindWindow w(0);
  EXPECT_FALSE(w.active());
  for (std::uint64_t s = 0; s < 100; ++s) {
    EXPECT_FALSE(w.admit(s, double(s)).has_value());
  }
  EXPECT_EQ(w.size(), 0u);  // disabled windows do not accumulate state
}

// Rollback stress: drop_newer_than must leave the window in a state from
// which the bound is still honored as arrivals re-tread the rolled-back
// stretch of application time — the failure-recovery path of
// CheckpointChain::rollback_to.
TEST(RewindWindowTest, BoundSurvivesRollbacks) {
  for (std::size_t k = 3; k <= 10; ++k) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      Rng rng(0x9011 + seed * 31 + k);
      RewindWindow w(k);
      double t = 0.0;
      double horizon = 0.0;
      std::uint64_t seq = 0;
      for (int step = 0; step < 400; ++step) {
        if (w.size() > 1 && rng.bernoulli(0.05)) {
          // Roll back to a random retained checkpoint; application time
          // resumes from its timestamp.
          const auto& live = w.live();
          const RewindWindow::Entry target =
              live[rng.uniform_u64(live.size())];
          w.drop_newer_than(target.sequence);
          t = target.time;
          continue;
        }
        t += rng.uniform(0.2, 2.0);
        horizon = std::max(horizon, t);
        w.admit(seq++, t);
        ASSERT_LE(w.size(), k);
        ASSERT_LE(w.max_gap(t), w.gap_bound(horizon) + 1e-9)
            << "k=" << k << " seed=" << seed << " step=" << step;
      }
    }
  }
}

}  // namespace
}  // namespace aic::ckpt
