// Tests for the coordinated (MPI) extension: job-level failure scaling,
// the aligned-vs-staggered adaptivity story, and basic sanity.
#include <gtest/gtest.h>

#include "control/coordinated.h"
#include "common/check.h"

namespace aic::control {
namespace {

CoordinatedConfig make_config(int processes, double stagger) {
  CoordinatedConfig cfg;
  const auto split = model::split_rate(2e-4);  // per-process rate
  cfg.base.system.lambda = {split[0], split[1], split[2]};
  cfg.base.workload_scale = 0.125;
  const auto prof =
      workload::spec_profile(workload::SpecBenchmark::kMilc, 0.125);
  cfg.base.costs =
      CostModel::paper_scaled(prof.footprint_pages * kPageSize);
  cfg.processes = processes;
  cfg.stagger_fraction = stagger;
  return cfg;
}

TEST(Coordinated, RunsAndProducesSaneNet2) {
  const auto cfg = make_config(3, 0.0);
  const auto res =
      run_coordinated(Scheme::kAic, workload::SpecBenchmark::kMilc, cfg);
  EXPECT_EQ(res.processes, 3);
  EXPECT_GT(res.checkpoints, 0u);
  EXPECT_GT(res.net2, 1.0);
  EXPECT_LT(res.net2, 20.0);
  EXPECT_GT(res.mean_delta_bytes, 0.0);
}

TEST(Coordinated, MoodyRejected) {
  const auto cfg = make_config(2, 0.0);
  EXPECT_THROW((void)run_coordinated(Scheme::kMoody,
                                     workload::SpecBenchmark::kMilc, cfg),
               CheckError);
}

TEST(Coordinated, AdaptiveBeatsStaticWhenRanksAligned) {
  // Aligned ranks hit their consolidation dips together: the adaptive
  // decider should exploit them like in the single-process case.
  const auto cfg = make_config(4, 0.0);
  const auto aic =
      run_coordinated(Scheme::kAic, workload::SpecBenchmark::kMilc, cfg);
  const auto sic =
      run_coordinated(Scheme::kSic, workload::SpecBenchmark::kMilc, cfg);
  EXPECT_LE(aic.net2, sic.net2 * 1.05);
}

TEST(Coordinated, StaggerErodesAdaptiveGain) {
  // The paper's reason for deferring AIC-for-MPI: with staggered ranks,
  // no moment is cheap for everyone, so the adaptive advantage shrinks.
  const auto aligned_cfg = make_config(4, 0.0);
  const auto staggered_cfg = make_config(4, 1.0);

  const auto aic_aligned = run_coordinated(
      Scheme::kAic, workload::SpecBenchmark::kMilc, aligned_cfg);
  const auto sic_aligned = run_coordinated(
      Scheme::kSic, workload::SpecBenchmark::kMilc, aligned_cfg);
  const auto aic_staggered = run_coordinated(
      Scheme::kAic, workload::SpecBenchmark::kMilc, staggered_cfg);
  const auto sic_staggered = run_coordinated(
      Scheme::kSic, workload::SpecBenchmark::kMilc, staggered_cfg);

  const double gain_aligned =
      (sic_aligned.net2 - aic_aligned.net2) / sic_aligned.net2;
  const double gain_staggered =
      (sic_staggered.net2 - aic_staggered.net2) / sic_staggered.net2;
  EXPECT_GT(gain_aligned, gain_staggered - 0.03)
      << "aligned ranks should benefit at least as much as staggered ones";
}

TEST(Coordinated, MoreProcessesRaiseJobNet2) {
  // Job-level failure rate scales with N: more ranks, worse NET^2.
  const auto res2 = run_coordinated(
      Scheme::kAic, workload::SpecBenchmark::kMilc, make_config(2, 0.0));
  const auto res8 = run_coordinated(
      Scheme::kAic, workload::SpecBenchmark::kMilc, make_config(8, 0.0));
  EXPECT_GT(res8.net2, res2.net2);
}

}  // namespace
}  // namespace aic::control
