// Tests for ckpt/: file format round trips, full/incremental/delta capture,
// restart replay, and the chain manager invariant — restoring after any
// mutation history reproduces the address space exactly.
#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/checkpoint_file.h"
#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "mem/address_space.h"

namespace aic::ckpt {
namespace {

void randomize_page(mem::AddressSpace& space, mem::PageId id, Rng& rng) {
  space.mutate(id, [&](std::span<std::uint8_t> b) {
    for (auto& x : b) x = std::uint8_t(rng());
  });
}

void small_edit(mem::AddressSpace& space, mem::PageId id, Rng& rng) {
  Bytes data(16);
  for (auto& x : data) x = std::uint8_t(rng());
  space.write(id, rng.uniform_u64(kPageSize - data.size()), data);
}

TEST(CheckpointFile, SerializeParseRoundTrip) {
  CheckpointFile f;
  f.kind = CheckpointKind::kIncrementalDelta;
  f.sequence = 42;
  f.app_time = 123.456;
  f.cpu_state = {1, 2, 3, 4};
  f.freed_pages = {7, 9, 1000};
  f.payload = {9, 8, 7, 6, 5};
  Bytes wire = f.serialize();
  EXPECT_EQ(wire.size(), f.serialized_size());
  CheckpointFile g = CheckpointFile::parse(wire);
  EXPECT_EQ(g.kind, f.kind);
  EXPECT_EQ(g.sequence, 42u);
  EXPECT_DOUBLE_EQ(g.app_time, 123.456);
  EXPECT_EQ(g.cpu_state, f.cpu_state);
  EXPECT_EQ(g.freed_pages, f.freed_pages);
  EXPECT_EQ(g.payload, f.payload);
}

TEST(CheckpointFile, BadMagicRejected) {
  CheckpointFile f;
  Bytes wire = f.serialize();
  wire[0] ^= 0xFF;
  EXPECT_THROW((void)CheckpointFile::parse(wire), CheckError);
}

TEST(CheckpointFile, TruncationRejected) {
  CheckpointFile f;
  f.payload = {1, 2, 3};
  Bytes wire = f.serialize();
  wire.pop_back();
  EXPECT_THROW((void)CheckpointFile::parse(wire), CheckError);
}

TEST(CheckpointFile, UnsortedFreedPagesRejected) {
  CheckpointFile f;
  f.freed_pages = {9, 3};
  EXPECT_THROW((void)f.serialize(), CheckError);
}

TEST(CheckpointFile, RawPagesRoundTrip) {
  Rng rng(1);
  Bytes a(kPageSize), b(kPageSize);
  for (auto& x : a) x = std::uint8_t(rng());
  for (auto& x : b) x = std::uint8_t(rng());
  Bytes payload = encode_raw_pages({{3, a}, {17, b}});
  auto pages = decode_raw_pages(payload);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0].first, 3u);
  EXPECT_EQ(pages[0].second, a);
  EXPECT_EQ(pages[1].first, 17u);
  EXPECT_EQ(pages[1].second, b);
}

TEST(Checkpointer, FullCaptureAndRestore) {
  Rng rng(2);
  mem::AddressSpace space;
  space.allocate_range(0, 8);
  for (mem::PageId id = 0; id < 8; ++id) randomize_page(space, id, rng);
  Bytes cpu = {1, 2, 3};
  CaptureStats stats;
  CheckpointFile f = Checkpointer::take_full(space, cpu, 0, 10.0, &stats);
  EXPECT_EQ(stats.pages_written, 8u);
  EXPECT_EQ(stats.uncompressed_bytes, 8 * kPageSize + 3);

  delta::PageAlignedCompressor pa;
  auto restored = RestartEngine::restore({f}, pa);
  EXPECT_TRUE(restored.memory.equals_space(space));
  EXPECT_EQ(restored.cpu_state, cpu);
  EXPECT_DOUBLE_EQ(restored.app_time, 10.0);
}

TEST(Checkpointer, IncrementalChainRestore) {
  Rng rng(3);
  mem::AddressSpace space;
  space.allocate_range(0, 8);
  for (mem::PageId id = 0; id < 8; ++id) randomize_page(space, id, rng);

  delta::PageAlignedCompressor pa;
  std::vector<CheckpointFile> chain;
  chain.push_back(Checkpointer::take_full(space, {}, 0, 0.0, nullptr));
  auto prev_live = space.live_pages();
  auto prev = mem::Snapshot::capture(space);

  // Interval 1: edit pages 1 and 4, free page 6, allocate page 9.
  space.protect_all();
  small_edit(space, 1, rng);
  small_edit(space, 4, rng);
  space.free_page(6);
  space.allocate(9);
  chain.push_back(Checkpointer::take_incremental_delta(
      space, {}, 1, 1.0, prev_live, prev, pa, nullptr));

  auto restored = RestartEngine::restore(chain, pa);
  EXPECT_TRUE(restored.memory.equals_space(space));
  EXPECT_FALSE(restored.memory.contains(6));
  EXPECT_TRUE(restored.memory.contains(9));
}

TEST(RestartEngine, RejectsChainNotStartingWithFull) {
  mem::AddressSpace space;
  space.allocate(0);
  CheckpointFile inc = Checkpointer::take_incremental(space, {}, 1, 0.0,
                                                      {}, nullptr);
  delta::PageAlignedCompressor pa;
  EXPECT_THROW((void)RestartEngine::restore({inc}, pa), CheckError);
}

TEST(RestartEngine, RejectsNonMonotoneSequence) {
  mem::AddressSpace space;
  space.allocate(0);
  auto full = Checkpointer::take_full(space, {}, 5, 0.0, nullptr);
  auto inc = Checkpointer::take_incremental(space, {}, 5, 1.0,
                                            space.live_pages(), nullptr);
  delta::PageAlignedCompressor pa;
  EXPECT_THROW((void)RestartEngine::restore({full, inc}, pa), CheckError);
}

class ChainFixture : public ::testing::Test {
 protected:
  void evolve(mem::AddressSpace& space, Rng& rng) {
    space.protect_all();
    const int edits = 1 + int(rng.uniform_u64(6));
    for (int e = 0; e < edits; ++e) {
      const mem::PageId id = rng.uniform_u64(24);
      if (!space.contains(id)) {
        space.allocate(id);
      } else if (rng.bernoulli(0.1)) {
        space.free_page(id);
      } else if (rng.bernoulli(0.3)) {
        randomize_page(space, id, rng);
      } else {
        small_edit(space, id, rng);
      }
    }
  }
};

TEST_F(ChainFixture, DeltaChainRestoresAfterEveryInterval) {
  Rng rng(4);
  mem::AddressSpace space;
  space.allocate_range(0, 12);
  for (mem::PageId id = 0; id < 12; ++id) randomize_page(space, id, rng);

  ckpt::CheckpointChain chain;
  for (int interval = 0; interval < 10; ++interval) {
    Bytes cpu = {std::uint8_t(interval)};
    chain.capture(space, cpu, double(interval));
    auto restored = chain.restore();
    ASSERT_TRUE(restored.memory.equals_space(space))
        << "divergence at interval " << interval;
    EXPECT_EQ(restored.cpu_state, cpu);
    evolve(space, rng);
  }
}

TEST_F(ChainFixture, PeriodicFullBoundsChainAndStillRestores) {
  Rng rng(5);
  mem::AddressSpace space;
  space.allocate_range(0, 12);
  CheckpointChain::Config cfg;
  cfg.full_period = 3;
  CheckpointChain chain(cfg);
  for (int interval = 0; interval < 12; ++interval) {
    if (interval > 0) evolve(space, rng);
    chain.capture(space, {}, double(interval));
    ASSERT_TRUE(chain.restore().memory.equals_space(space));
  }
  // Expect fulls at 0, 4, 8 (every 3 incrementals).
  int fulls = 0;
  for (const auto& f : chain.files())
    fulls += (f.kind == CheckpointKind::kFull);
  EXPECT_EQ(fulls, 3);

  const std::uint64_t reclaimed = chain.truncate_before_last_full();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_TRUE(chain.restore().memory.equals_space(space));
}

TEST_F(ChainFixture, RawIncrementalModeMatchesDeltaModeContent) {
  Rng rng(6);
  mem::AddressSpace s1, s2;
  s1.allocate_range(0, 8);
  s2.allocate_range(0, 8);
  for (mem::PageId id = 0; id < 8; ++id) {
    Rng r1(100 + id);
    s1.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(r1());
    });
    Rng r2(100 + id);
    s2.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(r2());
    });
  }
  CheckpointChain::Config raw_cfg;
  raw_cfg.delta_compress = false;
  CheckpointChain delta_chain;  // default: delta on
  CheckpointChain raw_chain(raw_cfg);

  for (int interval = 0; interval < 5; ++interval) {
    CaptureStats ds = delta_chain.capture(s1, {}, double(interval));
    CaptureStats rs = raw_chain.capture(s2, {}, double(interval));
    if (interval > 0) {
      EXPECT_LE(ds.file_bytes, rs.file_bytes)
          << "delta must not exceed raw incremental";
    }
    ASSERT_TRUE(delta_chain.restore().memory.equals_space(s1));
    ASSERT_TRUE(raw_chain.restore().memory.equals_space(s2));
    Rng step(7 + interval);
    s1.protect_all();
    s2.protect_all();
    for (int e = 0; e < 3; ++e) {
      const mem::PageId id = step.uniform_u64(8);
      Bytes data(32);
      Rng content(interval * 10 + e);
      for (auto& x : data) x = std::uint8_t(content());
      const std::size_t off = step.uniform_u64(kPageSize - data.size());
      s1.write(id, off, data);
      s2.write(id, off, data);
    }
  }
}

TEST_F(ChainFixture, CaptureStatsReflectDirtyPages) {
  Rng rng(8);
  mem::AddressSpace space;
  space.allocate_range(0, 10);
  CheckpointChain chain;
  chain.capture(space, {}, 0.0);
  space.protect_all();
  small_edit(space, 2, rng);
  small_edit(space, 5, rng);
  CaptureStats st = chain.capture(space, {}, 1.0);
  EXPECT_EQ(st.kind, CheckpointKind::kIncrementalDelta);
  EXPECT_EQ(st.pages_written, 2u);
  EXPECT_EQ(st.pages_delta, 2u);
  EXPECT_EQ(st.uncompressed_bytes, 2 * kPageSize);
  EXPECT_LT(st.file_bytes, st.uncompressed_bytes / 4);
  EXPECT_GT(st.delta_work_units, 0u);
}

TEST_F(ChainFixture, RestoreOnEmptyChainThrows) {
  CheckpointChain chain;
  EXPECT_THROW((void)chain.restore(), CheckError);
}

// ---------- on-disk format v2 (AICCKPT2, CRC-32C) ----------

namespace format {
constexpr std::uint64_t kMagicV1 = 0x31544B4343494141ULL;  // "AICCKPT1"
constexpr std::uint64_t kMagicV2 = 0x32544B4343494141ULL;  // "AICCKPT2"
}  // namespace format

/// Wraps a hand-built body in the v1 framing (no checksum) — the easiest
/// way to feed parse() a hostile body without forging a CRC.
Bytes v1_wrap(const Bytes& body) {
  Bytes out;
  ByteWriter w(out);
  w.u64(format::kMagicV1);
  w.raw(body);
  return out;
}

/// Wraps a hand-built body in the v2 framing with a *valid* CRC, proving
/// the field bounds checks run even when the checksum passes.
Bytes v2_wrap(const Bytes& body) {
  Bytes out;
  ByteWriter w(out);
  w.u64(format::kMagicV2);
  w.u32(crc32c(body));
  w.raw(body);
  return out;
}

/// A minimal valid body up to (not including) the cpu_state length field.
void write_preamble(ByteWriter& w, std::uint64_t sequence = 1) {
  w.u8(std::uint8_t(CheckpointKind::kIncremental));
  w.varint(sequence);
  w.f64(1.0);
}

TEST(CheckpointFileV2, SerializeEmitsChecksummedV2) {
  CheckpointFile f;
  f.kind = CheckpointKind::kIncremental;
  f.sequence = 3;
  f.payload = {1, 2, 3};
  Bytes wire = f.serialize();
  ByteReader r(wire);
  EXPECT_EQ(r.u64(), format::kMagicV2);
  const std::uint32_t stored = r.u32();
  EXPECT_EQ(stored, crc32c(ByteSpan(wire).subspan(12)));
  EXPECT_EQ(wire.size(), f.serialized_size());
  EXPECT_EQ(CheckpointFile::parse(wire).version, CheckpointFile::kVersionV2);
}

TEST(CheckpointFileV2, ParsesV1Records) {
  // A v1 record as the seed wrote them: body with no checksum field.
  Bytes body;
  ByteWriter w(body);
  w.u8(std::uint8_t(CheckpointKind::kIncrementalDelta));
  w.varint(9);
  w.f64(2.5);
  w.varint(2);  // cpu_state
  w.raw(Bytes{0xAA, 0xBB});
  w.varint(2);  // freed pages 4, 7 (delta-coded)
  w.varint(4);
  w.varint(3);
  w.varint(3);  // payload
  w.raw(Bytes{9, 9, 9});
  CheckpointFile f = CheckpointFile::parse(v1_wrap(body));
  EXPECT_EQ(f.version, CheckpointFile::kVersionV1);
  EXPECT_EQ(f.kind, CheckpointKind::kIncrementalDelta);
  EXPECT_EQ(f.sequence, 9u);
  EXPECT_DOUBLE_EQ(f.app_time, 2.5);
  EXPECT_EQ(f.cpu_state, (Bytes{0xAA, 0xBB}));
  EXPECT_EQ(f.freed_pages, (std::vector<mem::PageId>{4, 7}));
  EXPECT_EQ(f.payload, (Bytes{9, 9, 9}));
}

TEST(CheckpointFileV2, EveryBodyBitFlipFailsTheChecksum) {
  CheckpointFile f;
  f.kind = CheckpointKind::kIncrementalDelta;
  f.sequence = 42;
  f.cpu_state = {1, 2, 3};
  f.freed_pages = {5, 6};
  f.payload = {7, 8, 9, 10};
  const Bytes wire = f.serialize();
  for (std::size_t off = 12; off < wire.size(); ++off) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = wire;
      bad[off] ^= std::uint8_t(1u << bit);
      EXPECT_THROW((void)CheckpointFile::parse(bad), CheckError)
          << "offset " << off << " bit " << bit;
    }
  }
}

TEST(CheckpointFileV2, ChecksumErrorNamesOffsetAndSequence) {
  CheckpointFile f;
  f.sequence = 42;
  f.payload = {1, 2, 3};
  Bytes wire = f.serialize();
  wire.back() ^= 0x01;
  try {
    (void)CheckpointFile::parse(wire);
    FAIL() << "corrupt record parsed";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum mismatch at offset 8"), std::string::npos)
        << what;
    EXPECT_NE(what.find("claims sequence 42"), std::string::npos) << what;
  }
}

// ---------- hostile-input hardening: every length field bounds-checked ----

TEST(CheckpointFileHostile, OversizedCpuStateLengthRejected) {
  Bytes body;
  ByteWriter w(body);
  write_preamble(w);
  w.varint(std::uint64_t(1) << 60);  // cpu_state "length"
  try {
    (void)CheckpointFile::parse(v1_wrap(body));
    FAIL() << "hostile cpu length parsed";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("cpu_state length"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFileHostile, OversizedFreedCountRejected) {
  Bytes body;
  ByteWriter w(body);
  write_preamble(w);
  w.varint(0);                       // cpu_state empty
  w.varint(std::uint64_t(1) << 61);  // freed-page "count"
  EXPECT_THROW((void)CheckpointFile::parse(v1_wrap(body)), CheckError);
}

TEST(CheckpointFileHostile, OversizedPayloadLengthRejected) {
  Bytes body;
  ByteWriter w(body);
  write_preamble(w);
  w.varint(0);                       // cpu_state empty
  w.varint(0);                       // no freed pages
  w.varint(std::uint64_t(1) << 62);  // payload "length"
  try {
    (void)CheckpointFile::parse(v1_wrap(body));
    FAIL() << "hostile payload length parsed";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("payload length"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFileHostile, FreedPageIdOverflowRejected) {
  Bytes body;
  ByteWriter w(body);
  write_preamble(w);
  w.varint(0);               // cpu_state empty
  w.varint(2);               // two freed pages...
  w.varint(~std::uint64_t{0});  // first lands on the max id
  w.varint(2);               // second wraps around
  w.varint(0);               // payload empty
  try {
    (void)CheckpointFile::parse(v1_wrap(body));
    FAIL() << "freed-page id overflow parsed";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("freed-page id overflow"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFileHostile, BoundsCheckedEvenBehindAValidChecksum) {
  Bytes body;
  ByteWriter w(body);
  write_preamble(w);
  w.varint(std::uint64_t(1) << 60);  // hostile cpu length, valid CRC
  EXPECT_THROW((void)CheckpointFile::parse(v2_wrap(body)), CheckError);
}

TEST(CheckpointFileHostile, TruncatedAtEveryPrefixRejected) {
  CheckpointFile f;
  f.kind = CheckpointKind::kIncremental;
  f.sequence = 5;
  f.cpu_state = {1};
  f.freed_pages = {2};
  f.payload = {3, 4};
  const Bytes wire = f.serialize();
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    Bytes bad(wire.begin(), wire.begin() + keep);
    EXPECT_THROW((void)CheckpointFile::parse(bad), CheckError)
        << "prefix " << keep;
  }
}

TEST(CheckpointFileHostile, HostileRawPageCountRejected) {
  Bytes payload;
  ByteWriter w(payload);
  w.varint(std::uint64_t(1) << 55);  // "page count"
  EXPECT_THROW((void)decode_raw_pages(payload), CheckError);
}

// ---------- chain-restore error paths name the bad sequence ----------

class RestoreErrorPaths : public ::testing::Test {
 protected:
  /// full(0) + two delta incrementals (1, 2) over real edits.
  std::vector<CheckpointFile> make_chain() {
    Rng rng(77);
    space_.allocate_range(0, 6);
    for (mem::PageId id = 0; id < 6; ++id) randomize_page(space_, id, rng);
    std::vector<CheckpointFile> chain;
    chain.push_back(Checkpointer::take_full(space_, {}, 0, 0.0, nullptr));
    auto prev_live = space_.live_pages();
    auto prev = mem::Snapshot::capture(space_);
    for (std::uint64_t seq = 1; seq <= 2; ++seq) {
      space_.protect_all();
      small_edit(space_, seq, rng);
      small_edit(space_, seq + 2, rng);
      chain.push_back(Checkpointer::take_incremental_delta(
          space_, {}, seq, double(seq), prev_live, prev, pa_, nullptr));
      prev_live = space_.live_pages();
      prev = mem::Snapshot::capture(space_);
    }
    return chain;
  }

  static std::string restore_error(const std::vector<CheckpointFile>& chain) {
    delta::PageAlignedCompressor pa;
    try {
      (void)RestartEngine::restore(chain, pa);
    } catch (const CheckError& e) {
      return e.what();
    }
    return {};
  }

  mem::AddressSpace space_;
  delta::PageAlignedCompressor pa_;
};

TEST_F(RestoreErrorPaths, MissingMiddleIncrementalNamesTheGap) {
  auto chain = make_chain();
  chain.erase(chain.begin() + 1);  // drop sequence 1
  const std::string what = restore_error(chain);
  ASSERT_FALSE(what.empty()) << "restore accepted a gapped chain";
  EXPECT_NE(what.find("missing checkpoint"), std::string::npos) << what;
  EXPECT_NE(what.find("sequence 2 follows 0"), std::string::npos) << what;
}

TEST_F(RestoreErrorPaths, WrongSequenceRecordNamesBothSequences) {
  auto chain = make_chain();
  chain[2].sequence = 1;  // duplicates its predecessor
  const std::string what = restore_error(chain);
  ASSERT_FALSE(what.empty()) << "restore accepted a non-monotone chain";
  EXPECT_NE(what.find("sequence 1 follows 1"), std::string::npos) << what;
}

TEST_F(RestoreErrorPaths, BadCrcRecordFailsNamingTheSequence) {
  const auto chain = make_chain();
  // Store and re-load the chain the way a restart from disk would.
  std::vector<Bytes> stored;
  for (const CheckpointFile& f : chain) stored.push_back(f.serialize());
  stored[1][stored[1].size() - 1] ^= 0x10;  // corrupt sequence 1's body
  try {
    std::vector<CheckpointFile> reloaded;
    for (const Bytes& b : stored) reloaded.push_back(CheckpointFile::parse(b));
    FAIL() << "corrupt record parsed";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("claims sequence 1"), std::string::npos) << what;
  }
}

TEST_F(RestoreErrorPaths, UndecodableDeltaNamesTheSequence) {
  auto chain = make_chain();
  chain[2].payload.assign(48, 0xC3);  // garbage delta body
  const std::string what = restore_error(chain);
  ASSERT_FALSE(what.empty()) << "restore accepted a garbage delta";
  EXPECT_NE(what.find("restoring sequence 2"), std::string::npos) << what;
}

}  // namespace
}  // namespace aic::ckpt
