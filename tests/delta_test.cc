// Unit + property tests for delta/: rolling hash identities, XDelta3 and
// XOR codec round trips, compression effectiveness, and the page-aligned /
// whole-file checkpoint compressors.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "delta/correcting.h"
#include "delta/page_delta.h"
#include "delta/rolling_hash.h"
#include "delta/xdelta3.h"
#include "delta/xor_delta.h"
#include "mem/address_space.h"
#include "mem/snapshot.h"

namespace aic::delta {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

TEST(RollingHash, RollMatchesRecompute) {
  Rng rng(1);
  Bytes data = random_bytes(rng, 256);
  const std::size_t w = 16;
  RollingHash rh(data.data(), w);
  for (std::size_t pos = 0; pos + w < data.size(); ++pos) {
    RollingHash fresh(data.data() + pos, w);
    ASSERT_EQ(rh.digest(), fresh.digest()) << "at pos " << pos;
    rh.roll(data[pos], data[pos + w]);
  }
}

TEST(RollingHash, EqualBlocksEqualDigests) {
  Bytes a = {1, 2, 3, 4, 5, 6, 7, 8};
  Bytes b = a;
  EXPECT_EQ(RollingHash::of(a), RollingHash::of(b));
  b[3] ^= 0xFF;
  EXPECT_NE(RollingHash::of(a), RollingHash::of(b));
}

TEST(RollingHash, Fnv1aKnownVector) {
  // FNV-1a("a") = 0xAF63DC4C8601EC8C
  Bytes a = {'a'};
  EXPECT_EQ(fnv1a64(a), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a64(ByteSpan{}), 0xCBF29CE484222325ULL);
}

class CodecRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<DeltaCodec> make() const {
    if (GetParam() == 0) return std::make_unique<XDelta3Codec>();
    if (GetParam() == 1) return std::make_unique<XorDeltaCodec>();
    return std::make_unique<CorrectingDeltaCodec>();
  }
};

TEST_P(CodecRoundTrip, IdenticalBuffers) {
  Rng rng(2);
  auto codec = make();
  Bytes src = random_bytes(rng, 4096);
  CodecStats st;
  Bytes delta = codec->encode(src, src, &st);
  EXPECT_LT(delta.size(), 64u);  // near-total compression
  Bytes back = codec->decode(src, delta);
  EXPECT_EQ(back, src);
}

TEST_P(CodecRoundTrip, EmptyTarget) {
  Rng rng(3);
  auto codec = make();
  Bytes src = random_bytes(rng, 512);
  Bytes delta = codec->encode(src, {});
  EXPECT_EQ(codec->decode(src, delta), Bytes{});
}

TEST_P(CodecRoundTrip, EmptySource) {
  Rng rng(4);
  auto codec = make();
  Bytes tgt = random_bytes(rng, 512);
  Bytes delta = codec->encode({}, tgt);
  EXPECT_EQ(codec->decode({}, delta), tgt);
}

TEST_P(CodecRoundTrip, RandomUnrelatedBuffers) {
  Rng rng(5);
  auto codec = make();
  for (int trial = 0; trial < 10; ++trial) {
    Bytes src = random_bytes(rng, 1 + rng.uniform_u64(8192));
    Bytes tgt = random_bytes(rng, 1 + rng.uniform_u64(8192));
    Bytes delta = codec->encode(src, tgt);
    EXPECT_EQ(codec->decode(src, delta), tgt);
  }
}

TEST_P(CodecRoundTrip, SmallEdits) {
  Rng rng(6);
  auto codec = make();
  Bytes src = random_bytes(rng, 16384);
  Bytes tgt = src;
  for (int e = 0; e < 10; ++e) tgt[rng.uniform_u64(tgt.size())] ^= 0x5A;
  CodecStats st;
  Bytes delta = codec->encode(src, tgt, &st);
  EXPECT_EQ(codec->decode(src, delta), tgt);
  EXPECT_LT(st.ratio(), 0.2) << "few edits must compress well";
}

TEST_P(CodecRoundTrip, WrongSourceRejected) {
  Rng rng(7);
  auto codec = make();
  Bytes src = random_bytes(rng, 1024);
  Bytes tgt = random_bytes(rng, 1024);
  Bytes delta = codec->encode(src, tgt);
  Bytes other = random_bytes(rng, 777);
  EXPECT_THROW((void)codec->decode(other, delta), CheckError);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("XDelta3");
                             case 1:
                               return std::string("XorRle");
                             default:
                               return std::string("Correcting");
                           }
                         });

TEST(XDelta3, FindsShiftedContent) {
  Rng rng(8);
  Bytes src = random_bytes(rng, 8192);
  // Target = source shifted by 100 bytes with a new prefix: XOR can't see
  // it, block matching must.
  Bytes tgt = random_bytes(rng, 100);
  tgt.insert(tgt.end(), src.begin(), src.end());

  XDelta3Codec xd;
  XorDeltaCodec xr;
  CodecStats xd_st, xr_st;
  Bytes d1 = xd.encode(src, tgt, &xd_st);
  Bytes d2 = xr.encode(src, tgt, &xr_st);
  EXPECT_EQ(xd.decode(src, d1), tgt);
  EXPECT_EQ(xr.decode(src, d2), tgt);
  EXPECT_LT(xd_st.ratio(), 0.1);
  EXPECT_GT(xr_st.ratio(), 0.9);  // XOR sees nothing aligned
}

TEST(XDelta3, RepeatedBlocksBoundedProbes) {
  // All-identical source blocks put every offset in one bucket; encoding
  // must still terminate quickly and round-trip.
  Bytes src(64 * 1024, 0x42);
  Bytes tgt(64 * 1024, 0x42);
  tgt[1000] = 0x43;
  XDelta3Codec xd;
  CodecStats st;
  Bytes delta = xd.encode(src, tgt, &st);
  EXPECT_EQ(xd.decode(src, delta), tgt);
  EXPECT_LT(st.ratio(), 0.05);
}

TEST(XDelta3, TargetShorterThanBlock) {
  XDelta3Codec xd(XDelta3Config{.block_size = 64});
  Bytes src(256, 1);
  Bytes tgt = {9, 9, 9};
  Bytes delta = xd.encode(src, tgt);
  EXPECT_EQ(xd.decode(src, delta), tgt);
}

TEST(XDelta3, StatsAccounting) {
  Rng rng(9);
  Bytes src = random_bytes(rng, 4096);
  Bytes tgt = src;
  XDelta3Codec xd;
  CodecStats st;
  Bytes delta = xd.encode(src, tgt, &st);
  EXPECT_EQ(st.input_bytes, tgt.size());
  EXPECT_EQ(st.source_bytes, src.size());
  EXPECT_EQ(st.output_bytes, delta.size());
  EXPECT_GT(st.work_units, src.size());  // at least the hashing pass
  EXPECT_GE(st.copy_ops, 1u);
}

TEST(XorDelta, ZeroRunEncoding) {
  Bytes src(1024, 7);
  Bytes tgt = src;
  tgt[512] = 8;
  XorDeltaCodec xr;
  CodecStats st;
  Bytes delta = xr.encode(src, tgt, &st);
  EXPECT_EQ(xr.decode(src, delta), tgt);
  EXPECT_LT(delta.size(), 32u);
}

TEST(XorDelta, TargetLongerThanSource) {
  Rng rng(10);
  Bytes src = random_bytes(rng, 100);
  Bytes tgt = src;
  Bytes tail = random_bytes(rng, 300);
  tgt.insert(tgt.end(), tail.begin(), tail.end());
  XorDeltaCodec xr;
  Bytes delta = xr.encode(src, tgt);
  EXPECT_EQ(xr.decode(src, delta), tgt);
}

// ---- page-aligned and whole-file checkpoint compressors ----

class PageCompressorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    space_.allocate_range(0, 16);
    Rng rng(11);
    for (mem::PageId id = 0; id < 16; ++id) {
      space_.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    prev_ = mem::Snapshot::capture(space_);
  }

  std::vector<DirtyPage> dirty_views(const std::vector<mem::PageId>& ids) {
    std::vector<DirtyPage> out;
    for (auto id : ids) out.push_back({id, space_.page_bytes(id)});
    return out;
  }

  mem::AddressSpace space_;
  mem::Snapshot prev_;
};

TEST_F(PageCompressorFixture, PageAlignedRoundTrip) {
  // Lightly edit pages 2, 5; allocate new page 20.
  space_.protect_all();
  Bytes edit = {0xAA, 0xBB};
  space_.write(2, 100, edit);
  space_.write(5, 2000, edit);
  space_.allocate(20);

  PageAlignedCompressor pa;
  auto dirty = dirty_views(space_.dirty_pages());
  DeltaResult res = pa.compress(dirty, prev_);
  EXPECT_EQ(res.pages_total, 3u);
  EXPECT_EQ(res.pages_delta, 2u);  // pages 2, 5 had previous versions
  EXPECT_EQ(res.pages_raw, 1u);    // page 20 is new

  mem::Snapshot restored = pa.decompress(res.payload, prev_);
  for (auto id : space_.dirty_pages()) {
    ASSERT_TRUE(restored.contains(id));
    auto live = space_.page_bytes(id);
    auto got = restored.page_bytes(id);
    EXPECT_EQ(0, std::memcmp(live.data(), got.data(), kPageSize));
  }
}

TEST_F(PageCompressorFixture, PageAlignedCompressesHotPages) {
  space_.protect_all();
  Bytes edit = {1, 2, 3};
  for (mem::PageId id = 0; id < 8; ++id) space_.write(id, 64, edit);
  PageAlignedCompressor pa;
  DeltaResult res = pa.compress(dirty_views(space_.dirty_pages()), prev_);
  EXPECT_LT(res.stats.ratio(), 0.2);
}

TEST_F(PageCompressorFixture, PageAlignedDissimilarPageFallsBackToRaw) {
  space_.protect_all();
  Rng rng(12);
  space_.mutate(3, [&](std::span<std::uint8_t> b) {
    for (auto& x : b) x = std::uint8_t(rng());  // fully rewritten page
  });
  PageAlignedCompressor pa;
  DeltaResult res = pa.compress(dirty_views({3}), prev_);
  // Either encoded as raw (expansion guard) or as a delta barely smaller
  // than the page; payload must never blow past page + header slack.
  EXPECT_LE(res.payload.size(), kPageSize + 64);
  mem::Snapshot restored = pa.decompress(res.payload, prev_);
  EXPECT_EQ(0, std::memcmp(restored.page_bytes(3).data(),
                           space_.page_bytes(3).data(), kPageSize));
}

TEST_F(PageCompressorFixture, WholeFileRoundTrip) {
  space_.protect_all();
  Bytes edit = {0xCC};
  space_.write(1, 0, edit);
  space_.write(7, 128, edit);
  space_.allocate(30);

  WholeFileCompressor wf;
  auto dirty = dirty_views(space_.dirty_pages());
  DeltaResult res = wf.compress(dirty, prev_);
  mem::Snapshot restored = wf.decompress(res.payload, prev_);
  for (auto id : space_.dirty_pages()) {
    ASSERT_TRUE(restored.contains(id));
    EXPECT_EQ(0, std::memcmp(restored.page_bytes(id).data(),
                             space_.page_bytes(id).data(), kPageSize));
  }
}

TEST_F(PageCompressorFixture, WholeFileRequiresSortedIds) {
  space_.protect_all();
  Bytes edit = {1};
  space_.write(1, 0, edit);
  space_.write(7, 0, edit);
  WholeFileCompressor wf;
  auto dirty = dirty_views({7, 1});  // wrong order
  EXPECT_THROW((void)wf.compress(dirty, prev_), CheckError);
}

TEST_F(PageCompressorFixture, EmptyDirtySet) {
  PageAlignedCompressor pa;
  DeltaResult res = pa.compress({}, prev_);
  mem::Snapshot restored = pa.decompress(res.payload, prev_);
  EXPECT_EQ(restored.page_count(), 0u);
}

// Property: arbitrary random interval evolution round-trips through the
// page-aligned compressor.
TEST(PageAlignedProperty, RandomEvolutionRoundTrips) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    mem::AddressSpace space;
    space.allocate_range(0, 32);
    for (mem::PageId id = 0; id < 32; ++id) {
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    mem::Snapshot prev = mem::Snapshot::capture(space);
    space.protect_all();
    // Random edits: some partial, some full rewrites, some new pages.
    for (int e = 0; e < 20; ++e) {
      mem::PageId id = rng.uniform_u64(40);
      if (!space.contains(id)) {
        space.allocate(id);
        continue;
      }
      std::size_t len = 1 + rng.uniform_u64(512);
      std::size_t off = rng.uniform_u64(kPageSize - len);
      Bytes data(len);
      for (auto& x : data) x = std::uint8_t(rng());
      space.write(id, off, data);
    }
    PageAlignedCompressor pa;
    std::vector<DirtyPage> dirty;
    for (auto id : space.dirty_pages())
      dirty.push_back({id, space.page_bytes(id)});
    DeltaResult res = pa.compress(dirty, prev);
    mem::Snapshot restored = pa.decompress(res.payload, prev);
    ASSERT_EQ(restored.page_count(), dirty.size());
    for (auto& d : dirty) {
      ASSERT_EQ(0, std::memcmp(restored.page_bytes(d.id).data(),
                               d.bytes.data(), kPageSize));
    }
  }
}

}  // namespace
}  // namespace aic::delta
