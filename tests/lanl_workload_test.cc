// Tests for the reusable LANL workload module: the candidate-study wrapper
// the Table 1 bench consumes, and the deterministic fleet job mix the
// fleet service and fleet_scale bench draw from.
#include <gtest/gtest.h>

#include <set>

#include "trace/lanl_trace.h"
#include "workload/lanl_trace.h"

namespace aic::workload {
namespace {

TEST(LanlCandidateStudy, MatchesDirectTraceAnalysis) {
  const CandidateStudy study = run_candidate_study(20, /*days=*/10, 42);

  // Recompute by hand through the trace layer: same seed, same policies.
  const trace::SystemConfig sys = trace::system_by_id(20);
  trace::TraceConfig gen;
  gen.days = 10;
  gen.seed = 42;
  gen.policy = trace::SchedulerPolicy::kPacked;
  const auto packed_log = trace::generate_log(sys, gen);
  const auto packed = trace::analyze_candidates(packed_log, sys);
  EXPECT_EQ(study.packed.jobs, packed.jobs);
  EXPECT_EQ(study.packed.candidates, packed.candidates);

  // candidate_flags is the per-job view analyze_candidates aggregates.
  const auto flags = trace::candidate_flags(packed_log, sys);
  ASSERT_EQ(flags.size(), packed_log.size());
  std::size_t set_count = 0;
  for (const bool f : flags) set_count += f;
  EXPECT_EQ(set_count, packed.candidates);
}

TEST(LanlCandidateStudy, DeterministicAcrossCalls) {
  const CandidateStudy a = run_candidate_study(8, 5, 7);
  const CandidateStudy b = run_candidate_study(8, 5, 7);
  EXPECT_EQ(a.packed.jobs, b.packed.jobs);
  EXPECT_EQ(a.packed.candidates, b.packed.candidates);
  EXPECT_EQ(a.rectified.jobs, b.rectified.jobs);
  EXPECT_EQ(a.rectified.candidates, b.rectified.candidates);
}

TEST(LanlFleetJobs, ExactCountDenseIdsSortedArrivals) {
  FleetMixConfig cfg;
  cfg.jobs = 137;
  cfg.tenants = 5;
  cfg.seed = 3;
  const auto jobs = lanl_fleet_jobs(cfg);
  ASSERT_EQ(jobs.size(), 137u);

  std::set<std::uint64_t> ids;
  std::set<std::uint32_t> tenants;
  double prev_arrival = -1.0;
  for (const auto& j : jobs) {
    ids.insert(j.job_id);
    tenants.insert(j.tenant);
    EXPECT_GE(j.arrival_s, prev_arrival) << "sorted by arrival";
    prev_arrival = j.arrival_s;
    EXPECT_GE(j.arrival_s, 0.0);
    EXPECT_LE(j.arrival_s, cfg.arrival_horizon_s);
    EXPECT_GE(j.work_s, cfg.min_work_s);
    EXPECT_LE(j.work_s, cfg.max_work_s);
    EXPECT_GT(j.footprint_bytes, 0u);
    EXPECT_GE(j.dirty_fraction, 0.005);
    EXPECT_LE(j.dirty_fraction, 1.0);
    EXPECT_LT(j.tenant, cfg.tenants);
    EXPECT_GE(j.processes, 1);
  }
  EXPECT_EQ(ids.size(), 137u) << "ids unique";
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), 137u) << "ids dense from 1";
  EXPECT_EQ(tenants.size(), 5u) << "every tenant owns some jobs";
}

TEST(LanlFleetJobs, SeededDeterminismAndDivergence) {
  FleetMixConfig cfg;
  cfg.jobs = 64;
  cfg.seed = 9;
  const auto a = lanl_fleet_jobs(cfg);
  const auto b = lanl_fleet_jobs(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_id, b[i].job_id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].work_s, b[i].work_s);
    EXPECT_EQ(a[i].footprint_bytes, b[i].footprint_bytes);
    EXPECT_EQ(a[i].dirty_fraction, b[i].dirty_fraction);
  }

  cfg.seed = 10;
  const auto c = lanl_fleet_jobs(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].footprint_bytes != c[i].footprint_bytes ||
              a[i].arrival_s != c[i].arrival_s;
  }
  EXPECT_TRUE(differs) << "a different seed must reshuffle the mix";
}

TEST(LanlFleetJobs, ScalesToThousands) {
  FleetMixConfig cfg;
  cfg.jobs = 2500;
  cfg.tenants = 16;
  const auto jobs = lanl_fleet_jobs(cfg);
  EXPECT_EQ(jobs.size(), 2500u);
  // The generator cycles the five LANL systems with fresh seeds; the tail
  // cycles must keep producing valid candidate-derived jobs.
  EXPECT_EQ(jobs.back().job_id, 2500u);
}

}  // namespace
}  // namespace aic::workload
