// Tests for trace/: log synthesis invariants (capacity, FIFO, placement
// shapes), the candidate-job analysis, and Table 1's qualitative facts.
#include <gtest/gtest.h>

#include "common/check.h"
#include "trace/lanl_trace.h"

namespace aic::trace {
namespace {

TEST(Trace, FiveSystemsConfigured) {
  auto systems = table1_systems();
  ASSERT_EQ(systems.size(), 5u);
  EXPECT_EQ(system_by_id(15).cores_per_node, 256);
  EXPECT_EQ(system_by_id(20).nodes, 256);
  EXPECT_EQ(system_by_id(8).cores_per_node, 2);
  EXPECT_THROW((void)system_by_id(99), CheckError);
}

TEST(Trace, GeneratedLogRespectsCapacityAndOrdering) {
  auto sys = system_by_id(16);
  TraceConfig cfg;
  cfg.days = 20;
  auto log = generate_log(sys, cfg);
  ASSERT_GT(log.size(), 100u);
  for (const auto& job : log) {
    EXPECT_GE(job.dispatch_time, job.submit_time);
    EXPECT_GT(job.end_time, job.dispatch_time);
    EXPECT_GT(job.process_count(), 0);
    for (const auto& [node, count] : job.placement) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, sys.nodes);
      EXPECT_GE(count, 1);
      EXPECT_LE(count, sys.cores_per_node);
    }
  }
  // At no instant may a node exceed its core count. Verify via the
  // analyzer's own sweep: max usage <= cores (candidate analysis against a
  // virtual 1-more-core system counts nobody as over-capacity).
  SystemConfig bigger = sys;
  bigger.cores_per_node += 1;
  auto stats = analyze_candidates(log, bigger);
  EXPECT_EQ(stats.candidates, stats.jobs)
      << "some node exceeded its true core capacity";
}

TEST(Trace, DeterministicForSeed) {
  auto sys = system_by_id(20);
  TraceConfig cfg;
  cfg.days = 10;
  auto a = generate_log(sys, cfg);
  auto b = generate_log(sys, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_id, b[i].job_id);
    EXPECT_DOUBLE_EQ(a[i].dispatch_time, b[i].dispatch_time);
    EXPECT_EQ(a[i].placement, b[i].placement);
  }
  cfg.seed = 777;
  auto c = generate_log(sys, cfg);
  EXPECT_NE(a.size(), c.size());
}

TEST(Trace, CandidateAnalysisManualCase) {
  // Two jobs overlapping on node 0 of a 2-core system: together they fill
  // the node, so neither is a candidate while both run.
  SystemConfig sys;
  sys.system_id = 1;
  sys.nodes = 2;
  sys.cores_per_node = 2;
  JobRecord a;
  a.job_id = 1;
  a.dispatch_time = 0.0;
  a.end_time = 100.0;
  a.placement = {{0, 1}};
  JobRecord b;
  b.job_id = 2;
  b.dispatch_time = 50.0;
  b.end_time = 150.0;
  b.placement = {{0, 1}};
  JobRecord c;
  c.job_id = 3;
  c.dispatch_time = 0.0;
  c.end_time = 100.0;
  c.placement = {{1, 1}};  // alone on node 1: candidate
  auto stats = analyze_candidates({a, b, c}, sys);
  EXPECT_EQ(stats.jobs, 3u);
  EXPECT_EQ(stats.candidates, 1u);
}

TEST(Trace, FullNodePlacementIsNeverCandidate) {
  SystemConfig sys;
  sys.system_id = 2;
  sys.nodes = 1;
  sys.cores_per_node = 4;
  JobRecord a;
  a.job_id = 1;
  a.dispatch_time = 0.0;
  a.end_time = 10.0;
  a.placement = {{0, 4}};
  auto stats = analyze_candidates({a}, sys);
  EXPECT_EQ(stats.candidates, 0u);
}

class Table1Fixture : public ::testing::Test {
 protected:
  static CandidateStats run(int system_id, SchedulerPolicy policy) {
    auto sys = system_by_id(system_id);
    TraceConfig cfg;
    cfg.days = 45;
    cfg.policy = policy;
    return analyze_candidates(generate_log(sys, cfg), sys);
  }
};

TEST_F(Table1Fixture, RectifiedNeverHurts) {
  for (int id : {15, 20, 23, 8, 16}) {
    const double packed = run(id, SchedulerPolicy::kPacked).fraction();
    const double rect = run(id, SchedulerPolicy::kRectified).fraction();
    EXPECT_GE(rect, packed - 0.03) << "system " << id;
  }
}

TEST_F(Table1Fixture, System20HasFewestCandidatesPacked) {
  const double s20 = run(20, SchedulerPolicy::kPacked).fraction();
  for (int id : {15, 23, 8, 16}) {
    EXPECT_LT(s20, run(id, SchedulerPolicy::kPacked).fraction())
        << "vs system " << id;
  }
}

TEST_F(Table1Fixture, RectificationHelpsSmallCoreClustersMost) {
  auto gain = [&](int id) {
    return run(id, SchedulerPolicy::kRectified).fraction() -
           run(id, SchedulerPolicy::kPacked).fraction();
  };
  // Systems 20 (4 cores) and 8 (2 cores) gain a lot; fat-node systems and
  // the single-node NUMA barely move (Table 1's last column).
  EXPECT_GT(gain(20), 0.10);
  EXPECT_GT(gain(8), 0.15);
  EXPECT_LT(gain(15), 0.02);
  EXPECT_LT(gain(23), 0.05);
  EXPECT_LT(gain(16), 0.08);
}

TEST_F(Table1Fixture, FractionsInPaperBallpark) {
  // Loose bands around Table 1's values — shape, not digits.
  EXPECT_NEAR(run(15, SchedulerPolicy::kPacked).fraction(), 0.50, 0.12);
  EXPECT_NEAR(run(20, SchedulerPolicy::kPacked).fraction(), 0.17, 0.10);
  EXPECT_NEAR(run(23, SchedulerPolicy::kPacked).fraction(), 0.77, 0.12);
  EXPECT_NEAR(run(8, SchedulerPolicy::kPacked).fraction(), 0.47, 0.15);
  EXPECT_NEAR(run(16, SchedulerPolicy::kPacked).fraction(), 0.41, 0.10);
  EXPECT_NEAR(run(20, SchedulerPolicy::kRectified).fraction(), 0.32, 0.12);
  EXPECT_NEAR(run(8, SchedulerPolicy::kRectified).fraction(), 0.75, 0.15);
}

}  // namespace
}  // namespace aic::trace
