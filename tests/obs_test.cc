// Tests for the observability layer (src/obs/): metrics registry,
// trace log, JSON/CSV exporters and their round trips, the in-repo JSON
// parser's hostile-input behaviour, thread-safety under concurrent
// writers (the TSan leg runs every ObsTest.*), end-to-end trace coverage
// of an instrumented failure-simulator run, and the overhead guard — the
// hot path and the disabled path must not allocate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/async_checkpointer.h"
#include "common/check.h"
#include "common/rng.h"
#include "failure/failure.h"
#include "mem/snapshot.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/failure_sim.h"

// ---------------------------------------------------------------------------
// Heap instrumentation for the overhead guard here and the restore-memory
// guard in ckpt_test.cc (shared via heap_guard.h — this TU holds the one
// operator new/delete replacement the binary is allowed). Overriding the
// global operator new is the only way to observe the hot path's
// allocations without a tooling dependency; counters are relaxed-atomic so
// the concurrency tests in this binary stay race-free under TSan. Byte
// totals come from malloc_usable_size on both sides, so live_bytes stays
// exact through the unsized operator delete.

#include <malloc.h>

#include "heap_guard.h"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_bytes{0};

void note_alloc(void* p) {
  if (p == nullptr) return;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t size = malloc_usable_size(p);
  const std::uint64_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void note_free(void* p) {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}
}  // namespace

namespace aic::testing {

HeapStats heap_stats() {
  return HeapStats{g_alloc_count.load(std::memory_order_relaxed),
                   g_live_bytes.load(std::memory_order_relaxed),
                   g_peak_bytes.load(std::memory_order_relaxed)};
}

void reset_heap_peak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

}  // namespace aic::testing

// GCC flags the malloc/free implementations of the replaced operators as
// mismatched new/delete when it inlines them at call sites; the pairing is
// intentional here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size)) {
    note_alloc(p);
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size);
  note_alloc(p);
  return p;
}

void operator delete(void* p) noexcept {
  note_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  note_free(p);
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  note_free(p);
  std::free(p);
}

namespace aic::obs {
namespace {

std::uint64_t allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Metrics primitives.

TEST(ObsTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.counter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->add();
  c->add(41);
  EXPECT_EQ(c->value(), 42u);

  Gauge* g = reg.gauge("test.gauge");
  EXPECT_EQ(g->value(), 0.0);
  g->set(3.5);
  g->set(-1.25);
  EXPECT_EQ(g->value(), -1.25);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_FALSE(reg.empty());
}

TEST(ObsTest, RegistryHandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter* a = reg.counter("same.name");
  Counter* b = reg.counter("same.name");
  EXPECT_EQ(a, b);

  Histogram* h1 =
      reg.histogram("h", Histogram::linear_buckets(0.0, 10.0, 5));
  // Re-registration keeps the first creator's layout.
  Histogram* h2 =
      reg.histogram("h", Histogram::exponential_buckets(1.0, 2.0, 12));
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 5u);
}

TEST(ObsTest, HistogramBucketPlacementAndStats) {
  Histogram h(Histogram::linear_buckets(0.0, 10.0, 5));
  // Bounds: 2, 4, 6, 8, 10.
  ASSERT_EQ(h.bounds().size(), 5u);
  EXPECT_DOUBLE_EQ(h.bounds().front(), 2.0);
  EXPECT_DOUBLE_EQ(h.bounds().back(), 10.0);

  h.observe(1.0);    // bucket 0
  h.observe(2.0);    // bucket 0 (x <= bound)
  h.observe(5.0);    // bucket 2
  h.observe(100.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 108.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);  // overflow bucket
}

TEST(ObsTest, HistogramSnapshotQuantiles) {
  Histogram h(Histogram::linear_buckets(0.0, 100.0, 10));
  for (int i = 1; i <= 100; ++i) h.observe(double(i));
  MetricsRegistry reg;  // snapshot via registry for the full path
  Histogram* rh = reg.histogram("q", Histogram::linear_buckets(0.0, 100.0, 10));
  for (int i = 1; i <= 100; ++i) rh->observe(double(i));
  const auto snap = reg.snapshot().histograms.at("q");
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.mean(), 50.5, 1e-9);
  EXPECT_NEAR(snap.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(snap.quantile(0.95), 95.0, 10.0);
  // Overflow mass reports the last finite bound.
  rh->observe(1e9);
  const auto snap2 = reg.snapshot().histograms.at("q");
  EXPECT_DOUBLE_EQ(snap2.quantile(1.0), 100.0);
}

TEST(ObsTest, HistogramQuantileInterpolatesExactly) {
  // Uniform 1..10 in linear buckets of width 2 (bounds 2,4,6,8,10): two
  // observations per bucket, so the interpolated quantiles land exactly
  // where a continuous uniform distribution would put them.
  MetricsRegistry reg;
  Histogram* h = reg.histogram("u", Histogram::linear_buckets(0.0, 10.0, 5));
  for (int i = 1; i <= 10; ++i) h->observe(double(i));
  const HistogramSnapshot snap = reg.snapshot().histograms.at("u");
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.95), 9.5);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 9.9);
  EXPECT_DOUBLE_EQ(snap.quantile(0.25), 2.5);
  // Out-of-range q clamps; empty histogram reports 0.
  EXPECT_DOUBLE_EQ(snap.quantile(1.5), snap.quantile(1.0));
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
  // Mass past the last bound reports the last finite bound, never a
  // made-up extrapolation.
  Histogram* of = reg.histogram("of", Histogram::linear_buckets(0.0, 10.0, 5));
  for (int i = 0; i < 4; ++i) of->observe(1e9);
  EXPECT_DOUBLE_EQ(reg.snapshot().histograms.at("of").quantile(0.99), 10.0);
}

TEST(ObsTest, ExponentialBucketsGrowGeometrically) {
  const auto b = Histogram::exponential_buckets(1.0, 2.0, 8);
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_NEAR(b[i] / b[i - 1], 2.0, 1e-12);
  }
}

TEST(ObsTest, SnapshotLookupHelpers) {
  MetricsRegistry reg;
  reg.counter("present")->add(7);
  reg.gauge("g")->set(2.5);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or_zero("present"), 7u);
  EXPECT_EQ(snap.counter_or_zero("absent"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("g", -1.0), 2.5);
  EXPECT_DOUBLE_EQ(snap.gauge_or("missing", -1.0), -1.0);
}

// ---------------------------------------------------------------------------
// Trace log.

TEST(ObsTest, TraceLogRecordsSpansAndInstants) {
  TraceLog log;
  log.span(TimeDomain::kVirtual, "cat", "sp", 1.0, 3.5, 2,
           {{"bytes", 42.0}});
  log.instant(TimeDomain::kWall, "cat", "in", 0.25, 0, {{"level", 2.0}});
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kSpan);
  EXPECT_EQ(events[0].domain, TimeDomain::kVirtual);
  EXPECT_DOUBLE_EQ(events[0].start, 1.0);
  EXPECT_DOUBLE_EQ(events[0].duration, 2.5);
  EXPECT_EQ(events[0].track, 2u);
  ASSERT_EQ(events[0].arg_count, 1);
  EXPECT_STREQ(events[0].args[0].key, "bytes");
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(events[1].domain, TimeDomain::kWall);
  EXPECT_DOUBLE_EQ(events[1].duration, 0.0);
}

TEST(ObsTest, TraceLogClampsNegativeDurationAndExtraArgs) {
  TraceLog log;
  log.span(TimeDomain::kVirtual, "c", "n", 5.0, 3.0, 0,
           {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}, {"f", 6}});
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].duration, 0.0);
  EXPECT_EQ(events[0].arg_count, TraceEvent::kMaxArgs);
}

TEST(ObsTest, TraceLogCapacityBoundCountsDrops) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.instant(TimeDomain::kVirtual, "c", "n", double(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
}

// ---------------------------------------------------------------------------
// JSON parser (hostile input discipline).

TEST(ObsTest, JsonParsesScalarsAndNesting) {
  const JsonValue v = json_parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\ny"})");
  ASSERT_TRUE(v.is(JsonValue::Kind::kObject));
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].as_number(), -300.0);
  EXPECT_TRUE(v.at("b").at("c").boolean);
  EXPECT_TRUE(v.at("b").at("d").is(JsonValue::Kind::kNull));
  EXPECT_EQ(v.at("s").str, "x\ny");
}

TEST(ObsTest, JsonParsesUnicodeEscapes) {
  const JsonValue v = json_parse(R"(["Aé€"])");
  ASSERT_EQ(v.array.size(), 1u);
  EXPECT_EQ(v.array[0].str, "A\xC3\xA9\xE2\x82\xAC");
}

TEST(ObsTest, JsonRejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), CheckError);
  EXPECT_THROW(json_parse("{"), CheckError);
  EXPECT_THROW(json_parse("[1,]"), CheckError);
  EXPECT_THROW(json_parse("{\"a\": 1} trailing"), CheckError);
  EXPECT_THROW(json_parse("\"unterminated"), CheckError);
  EXPECT_THROW(json_parse("01"), CheckError);
  EXPECT_THROW(json_parse("nul"), CheckError);
  EXPECT_THROW(json_parse("{\"bad\\q\": 1}"), CheckError);
}

TEST(ObsTest, JsonNumberRejectsNonFinite) {
  EXPECT_THROW(json_number(std::numeric_limits<double>::infinity()),
               CheckError);
  EXPECT_THROW(json_number(std::nan("")), CheckError);
  EXPECT_EQ(json_number(0.5), "0.5");
}

// ---------------------------------------------------------------------------
// Exporters and round trips.

MetricsRegistry& populated_registry(MetricsRegistry& reg) {
  reg.counter("c.one")->add(3);
  reg.counter("c.two")->add(1ull << 40);
  reg.gauge("g.neg")->set(-2.75);
  Histogram* h = reg.histogram("h.lat", Histogram::exponential_buckets(
                                            1e-3, 10.0, 4));
  h->observe(5e-4);
  h->observe(0.05);
  h->observe(99.0);
  return reg;
}

TEST(ObsTest, MetricsJsonRoundTrip) {
  MetricsRegistry reg;
  const MetricsSnapshot snap = populated_registry(reg).snapshot();
  const MetricsSnapshot back = metrics_from_json(metrics_to_json(snap));
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_EQ(back.histograms.size(), snap.histograms.size());
  const auto& h0 = snap.histograms.at("h.lat");
  const auto& h1 = back.histograms.at("h.lat");
  EXPECT_EQ(h1.bounds, h0.bounds);
  EXPECT_EQ(h1.counts, h0.counts);
  EXPECT_EQ(h1.count, h0.count);
  EXPECT_DOUBLE_EQ(h1.sum, h0.sum);
}

TEST(ObsTest, MetricsFromJsonRejectsSchemaViolations) {
  EXPECT_THROW(metrics_from_json("[]"), CheckError);
  EXPECT_THROW(metrics_from_json(R"({"counters": {"c": "nope"}})"),
               CheckError);
  // counts must have bounds.size() + 1 entries.
  EXPECT_THROW(metrics_from_json(
                   R"({"histograms": {"h": {"bounds": [1.0],
                       "counts": [1], "count": 1, "sum": 1.0}}})"),
               CheckError);
}

TEST(ObsTest, MetricsCsvRowPerDatum) {
  MetricsRegistry reg;
  reg.counter("a")->add(2);
  reg.gauge("b")->set(1.5);
  // A histogram contributes count/sum, the interpolated p50/p95/p99
  // summary rows, and one cumulative row per bucket.
  Histogram* h = reg.histogram("lat", Histogram::linear_buckets(0.0, 10.0, 5));
  for (int i = 1; i <= 10; ++i) h->observe(double(i));
  const std::string csv = metrics_to_csv(reg.snapshot());
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,a,value,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b,value,1.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,count,10"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p50,5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p95,9.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p99,9.9"), std::string::npos);
}

TEST(ObsTest, MetricsCsvSkipsQuantilesForEmptyHistogram) {
  MetricsRegistry reg;
  reg.histogram("empty", Histogram::linear_buckets(0.0, 10.0, 5));
  const std::string csv = metrics_to_csv(reg.snapshot());
  EXPECT_NE(csv.find("histogram,empty,count,0"), std::string::npos);
  EXPECT_EQ(csv.find("histogram,empty,p50"), std::string::npos);
}

// Minimal RFC-4180 row splitter: enough to round-trip the exporter's own
// output, including quoted fields with embedded commas and quotes.
std::vector<std::string> csv_split_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        cur += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

TEST(ObsTest, MetricsCsvQuotesHostileNamesRfc4180) {
  // Dynamically named metrics can carry commas and quotes (an SLO rule
  // named from user text, say); the flattened rows must stay parseable.
  MetricsRegistry reg;
  reg.counter("plain")->add(1);
  reg.gauge("evil,name")->set(2.0);
  reg.gauge("worse\"quoted\",name")->set(3.0);
  const std::string csv = metrics_to_csv(reg.snapshot());

  // Round trip: every row splits back to exactly 4 fields and the
  // hostile names survive byte-exact.
  std::vector<std::vector<std::string>> rows;
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = csv_split_row(line);
    ASSERT_EQ(fields.size(), 4u) << "unparseable row: " << line;
    rows.push_back(fields);
  }
  bool saw_comma = false, saw_quote = false;
  for (const auto& r : rows) {
    if (r[1] == "evil,name") saw_comma = true;
    if (r[1] == "worse\"quoted\",name") saw_quote = true;
  }
  EXPECT_TRUE(saw_comma);
  EXPECT_TRUE(saw_quote);
  // And the quoting is the RFC form on the wire, not a lossy substitute.
  EXPECT_NE(csv.find("\"evil,name\""), std::string::npos);
  EXPECT_NE(csv.find("\"worse\"\"quoted\"\",name\""), std::string::npos);
}

TEST(ObsTest, MetricsPromExposition) {
  MetricsRegistry reg;
  reg.counter("xfer.commits")->add(3);
  reg.gauge("fleet.goodput_bps")->set(1.5e6);
  Histogram* h = reg.histogram("lat", Histogram::linear_buckets(0.0, 1.0, 2));
  h->observe(0.5);
  h->observe(1.5);
  h->observe(99.0);
  const std::string prom = metrics_to_prom(reg.snapshot());

  // Names are sanitized into the aic_ prefix with TYPE headers.
  EXPECT_NE(prom.find("# TYPE aic_xfer_commits counter"), std::string::npos);
  EXPECT_NE(prom.find("aic_xfer_commits 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE aic_fleet_goodput_bps gauge"),
            std::string::npos);
  // Histograms expose cumulative buckets plus sum/count.
  EXPECT_NE(prom.find("# TYPE aic_lat histogram"), std::string::npos);
  EXPECT_NE(prom.find("aic_lat_bucket{le=\"0.5\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("aic_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("aic_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("aic_lat_sum 101"), std::string::npos);
  EXPECT_NE(prom.find("aic_lat_count 3"), std::string::npos);
}

TEST(ObsTest, MetricsPromFlattensDynamicFamiliesToLabels) {
  MetricsRegistry reg;
  reg.gauge(names::tenant_metric(0, names::kTenantGoodputBps))->set(1.0);
  reg.gauge(names::tenant_metric(7, names::kTenantGoodputBps))->set(2.0);
  reg.gauge(names::slo_metric("tts-p99", names::kSloRuleOk))->set(1.0);
  reg.gauge("fleet.tenant.notanid.x")->set(3.0);  // not the family shape
  const std::string prom = metrics_to_prom(reg.snapshot());

  // One family, two labeled samples — not one metric per tenant id.
  EXPECT_NE(prom.find("aic_fleet_tenant_goodput_bps{tenant=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("aic_fleet_tenant_goodput_bps{tenant=\"7\"} 2"),
            std::string::npos);
  EXPECT_EQ(prom.find("aic_fleet_tenant_0_goodput_bps"), std::string::npos);
  // SLO rules flatten the same way, keyed by rule name.
  EXPECT_NE(prom.find("aic_fleet_slo_ok{rule=\"tts-p99\"} 1"),
            std::string::npos);
  // Names outside the family shape stay plain (sanitized) metrics.
  EXPECT_NE(prom.find("aic_fleet_tenant_notanid_x 3"), std::string::npos);
}

TEST(ObsTest, ChromeTraceExportShape) {
  TraceLog log;
  log.span(TimeDomain::kVirtual, "xfer", "chunk", 1.0, 1.5, 3,
           {{"bytes", 4096.0}});
  log.instant(TimeDomain::kWall, "sim", "failure", 0.125);
  const JsonValue doc = json_parse(trace_to_chrome_json(log));
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is(JsonValue::Kind::kArray));

  int meta = 0, spans = 0, instants = 0;
  for (const JsonValue& e : events.array) {
    const std::string& ph = e.at("ph").str;
    if (ph == "M") {
      ++meta;
      continue;
    }
    if (ph == "X") {
      ++spans;
      EXPECT_EQ(e.at("cat").str, "xfer");
      EXPECT_EQ(e.at("name").str, "chunk");
      EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 1.0);  // virtual domain
      EXPECT_DOUBLE_EQ(e.at("tid").as_number(), 3.0);
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 1e6);   // microseconds
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 5e5);
      EXPECT_DOUBLE_EQ(e.at("args").at("bytes").as_number(), 4096.0);
    }
    if (ph == "i") {
      ++instants;
      EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 2.0);  // wall domain
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 125000.0);
      EXPECT_EQ(e.at("s").str, "t");
    }
  }
  EXPECT_EQ(meta, 2);  // one process_name per time domain
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
}

// ---------------------------------------------------------------------------
// Run report.

TEST(ObsTest, RunReportFromJsonRecoversWStarHistory) {
  Hub hub;
  hub.metrics.counter(names::kDeciderEvaluations)->add(2);
  hub.trace.instant(TimeDomain::kVirtual, names::kCatDecider,
                    names::kEvDecision, 1.0, 0, {{"w_star", 12.5}});
  hub.trace.instant(TimeDomain::kVirtual, names::kCatDecider,
                    names::kEvDecision, 2.0, 0, {{"w_star", 14.0}});
  const std::string mjson = metrics_to_json(hub.metrics.snapshot());
  const std::string tjson = trace_to_chrome_json(hub.trace);
  const RunReport report = RunReport::from_json(mjson, tjson);
  ASSERT_EQ(report.w_star_history.size(), 2u);
  EXPECT_DOUBLE_EQ(report.w_star_history[0], 12.5);
  EXPECT_DOUBLE_EQ(report.w_star_history[1], 14.0);
  const std::string text = report.render();
  EXPECT_NE(text.find("decider"), std::string::npos);
  EXPECT_NE(text.find("12.5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan leg: ObsTest.* runs under -fsanitize=thread).

TEST(ObsTest, ConcurrentWritersProduceExactTotals) {
  MetricsRegistry reg;
  Counter* c = reg.counter("conc.counter");
  Histogram* h =
      reg.histogram("conc.hist", Histogram::linear_buckets(0.0, 1.0, 4));
  TraceLog log(1 << 12);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->add();
        h->observe(double(i % 5) / 4.0);
        if (i % 100 == 0) {
          log.span(TimeDomain::kWall, "conc", "work", 0.0, 1.0,
                   std::uint32_t(t));
        }
      }
    });
  }
  // Concurrent snapshots must be safe against the writers.
  for (int i = 0; i < 50; ++i) {
    (void)reg.snapshot();
    (void)log.size();
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c->value(), std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(log.size() + log.dropped(),
            std::uint64_t(kThreads) * (kPerThread / 100));
}

TEST(ObsTest, ConcurrentRegistryResolutionIsSafe) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  std::array<Counter*, 8> seen{};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter* c = reg.counter("same.instrument");
      c->add();
      seen[std::size_t(t)] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(seen[std::size_t(t)], seen[0]);
  EXPECT_EQ(seen[0]->value(), 8u);
}

// ---------------------------------------------------------------------------
// Overhead guard: the hot path and the disabled path allocate nothing.

TEST(ObsTest, HotPathDoesNotAllocate) {
  MetricsRegistry reg;
  Counter* c = reg.counter("guard.counter");
  Gauge* g = reg.gauge("guard.gauge");
  Histogram* h = reg.histogram(
      "guard.hist", Histogram::exponential_buckets(1e-6, 4.0, 16));
  TraceLog log(8);
  for (int i = 0; i < 8; ++i) {
    log.instant(TimeDomain::kVirtual, "guard", "fill", double(i));
  }
  ASSERT_EQ(log.size(), 8u);  // at capacity: further events hit the drop path

  const std::uint64_t before = allocations();
  for (int i = 0; i < 1000; ++i) {
    c->add();
    g->set(double(i));
    h->observe(double(i) * 1e-5);
    log.span(TimeDomain::kVirtual, "guard", "dropped", 0.0, 1.0);
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "counter/gauge/histogram/trace-drop hot paths must not allocate";
  EXPECT_EQ(c->value(), 1000u);
  EXPECT_EQ(log.dropped(), 1000u);
}

TEST(ObsTest, DisabledSitePatternDoesNotAllocate) {
  // The component pattern with a null hub: handles stay null, every site
  // is one branch. This is what "observability disabled" costs.
  Hub* hub = nullptr;
  Counter* c = nullptr;
  Histogram* h = nullptr;
  if (hub != nullptr) {
    c = hub->metrics.counter("never");
    h = hub->metrics.histogram("never.h",
                               Histogram::linear_buckets(0.0, 1.0, 4));
  }
  const std::uint64_t before = allocations();
  double acc = 0.0;
  for (int i = 0; i < 10000; ++i) {
    acc += double(i);
    if (c != nullptr) c->add();
    if (h != nullptr) h->observe(acc);
    if (hub != nullptr) {
      hub->trace.instant(TimeDomain::kVirtual, "never", "ev", acc);
    }
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_GT(acc, 0.0);
}

TEST(ObsTest, DisabledRunLeavesRegistryEmptyAndResultUnchanged) {
  sim::FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures = failure::FailureSpec::from_total(0.04);
  cfg.checkpoint_interval = 10.0;
  cfg.seed = 22;

  cfg.obs = nullptr;
  const auto plain = sim::run_failure_sim(cfg);

  Hub hub;
  cfg.obs = &hub;
  const auto observed = sim::run_failure_sim(cfg);

  // Attaching a hub must not perturb the virtual timeline.
  EXPECT_DOUBLE_EQ(observed.turnaround, plain.turnaround);
  EXPECT_EQ(observed.checkpoints, plain.checkpoints);
  EXPECT_EQ(observed.restores, plain.restores);
  EXPECT_EQ(observed.failures_by_level, plain.failures_by_level);
  EXPECT_TRUE(observed.final_state_verified);
  EXPECT_FALSE(hub.metrics.empty());

  // And the un-observed run must not have touched any registry: a fresh
  // hub the run never saw is the only registry in scope — it stays empty.
  Hub untouched;
  EXPECT_TRUE(untouched.metrics.empty());
  EXPECT_EQ(untouched.trace.size(), 0u);
}

// ---------------------------------------------------------------------------
// Instrumented components end to end.

TEST(ObsTest, AsyncCheckpointerEmitsCaptureCompressSpans) {
  Hub hub;
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  Rng rng(5);
  for (mem::PageId id = 0; id < 16; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::AsyncCheckpointer::Config cfg;
  cfg.chain.obs = &hub;
  ckpt::AsyncCheckpointer async(std::move(cfg));
  async.submit(space, {}, 0.0);
  space.write(2, 0, Bytes{1, 2, 3});
  async.submit(space, {}, 1.0);
  (void)async.restore();

  const auto snap = hub.metrics.snapshot();
  EXPECT_EQ(snap.counter_or_zero(names::kCkptCheckpoints), 2u);
  EXPECT_EQ(snap.counter_or_zero(names::kCkptFulls), 1u);
  EXPECT_GT(snap.counter_or_zero(names::kCkptFileBytes), 0u);
  ASSERT_TRUE(snap.histograms.count(names::kCkptCaptureSeconds));
  EXPECT_EQ(snap.histograms.at(names::kCkptCaptureSeconds).count, 2u);
  EXPECT_EQ(snap.histograms.at(names::kCkptCompressSeconds).count, 2u);

  int captures = 0, compresses = 0;
  for (const auto& e : hub.trace.snapshot()) {
    if (std::string(e.name) == names::kEvCapture) ++captures;
    if (std::string(e.name) == names::kEvCompress) ++compresses;
    if (std::string(e.name) == names::kEvCapture ||
        std::string(e.name) == names::kEvCompress) {
      EXPECT_EQ(e.domain, TimeDomain::kWall);
    }
  }
  EXPECT_EQ(captures, 2);
  EXPECT_EQ(compresses, 2);
}

// The acceptance check for the whole layer: a full failure-simulator run
// with the transfer engine exports a Chrome trace whose spans cover the
// pipeline — checkpoint intervals, compression shards, drain chunks,
// failure and restart instants — and the file parses as valid JSON with
// well-formed events.
TEST(ObsTest, FailureSimChromeTraceCoversPipeline) {
  Hub hub;
  sim::FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures = failure::FailureSpec::from_total(0.04);
  cfg.checkpoint_interval = 10.0;
  cfg.seed = 11;
  cfg.use_transfer_engine = true;
  cfg.obs = &hub;
  const auto res = sim::run_failure_sim(cfg);
  ASSERT_TRUE(res.final_state_verified);
  ASSERT_GT(res.total_failures(), 0);

  const JsonValue doc = json_parse(trace_to_chrome_json(hub.trace));
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is(JsonValue::Kind::kArray));

  std::set<std::pair<std::string, std::string>> span_kinds;
  std::set<std::pair<std::string, std::string>> instant_kinds;
  for (const JsonValue& e : events.array) {
    const std::string& ph = e.at("ph").str;
    if (ph == "M") continue;
    ASSERT_TRUE(ph == "X" || ph == "i") << "unexpected phase " << ph;
    const std::string& cat = e.at("cat").str;
    const std::string& name = e.at("name").str;
    const double ts = e.at("ts").as_number();
    EXPECT_GE(ts, 0.0);
    if (ph == "X") {
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      span_kinds.emplace(cat, name);
    } else {
      instant_kinds.emplace(cat, name);
    }
  }

  using P = std::pair<std::string, std::string>;
  EXPECT_TRUE(span_kinds.count(P(names::kCatCkpt, names::kEvInterval)))
      << "checkpoint intervals missing from trace";
  EXPECT_TRUE(span_kinds.count(P(names::kCatDelta, names::kEvShard)))
      << "compression shards missing from trace";
  EXPECT_TRUE(span_kinds.count(P(names::kCatXfer, names::kEvChunk)))
      << "drain chunks missing from trace";
  EXPECT_TRUE(instant_kinds.count(P(names::kCatSim, names::kEvFailure)))
      << "failure instants missing from trace";
  EXPECT_TRUE(span_kinds.count(P(names::kCatSim, names::kEvRestore)))
      << "restore spans missing from trace";

  // The registry side agrees with the simulator's own counters.
  const auto snap = hub.metrics.snapshot();
  EXPECT_EQ(snap.counter_or_zero(names::kSimRestores),
            std::uint64_t(res.restores));
  EXPECT_EQ(snap.counter_or_zero(names::kSimFailuresL1) +
                snap.counter_or_zero(names::kSimFailuresL2) +
                snap.counter_or_zero(names::kSimFailuresL3),
            std::uint64_t(res.total_failures()));
  EXPECT_NEAR(snap.gauge_or(names::kSimNet2, 0.0), res.net2(), 1e-12);

  // And the report renders something useful from it.
  const std::string text = RunReport::from_hub(hub).render();
  EXPECT_NE(text.find("NET^2"), std::string::npos);
  EXPECT_NE(text.find("transfer engine"), std::string::npos);
}

}  // namespace
}  // namespace aic::obs
