// Tests for the telemetry time-series layer (src/obs/timeseries.*):
// bounded-ring semantics, the sampler's counter/gauge/histogram
// derivations (reset handling, empty-window quantiles, the min-interval
// throttle), and the backwards-clock guard. The TSan leg runs every
// TimeseriesTest.* (concurrent reader/writer over one series).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace {

using aic::CheckError;
using aic::obs::Counter;
using aic::obs::Gauge;
using aic::obs::Histogram;
using aic::obs::MetricsRegistry;
using aic::obs::SamplePoint;
using aic::obs::Sampler;
using aic::obs::Series;
using aic::obs::TimeseriesStore;

TEST(TimeseriesTest, RingEvictsOldestAndCountsEvictions) {
  Series s("t.ring", 4);
  for (int i = 0; i < 10; ++i) s.push(double(i), double(i) * 10.0);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total_pushed(), 10u);
  EXPECT_EQ(s.evicted(), 6u);
  const std::vector<SamplePoint> pts = s.points();
  ASSERT_EQ(pts.size(), 4u);
  // Oldest -> newest, and the oldest retained point is t=6.
  EXPECT_DOUBLE_EQ(pts.front().t, 6.0);
  EXPECT_DOUBLE_EQ(pts.back().t, 9.0);
  EXPECT_DOUBLE_EQ(s.last().v, 90.0);
}

TEST(TimeseriesTest, BackwardsTimeIsACheckError) {
  Series s("t.clock", 8);
  s.push(5.0, 1.0);
  s.push(5.0, 2.0);  // equal time is fine (same-round points)
  EXPECT_THROW(s.push(4.9, 3.0), CheckError);
}

TEST(TimeseriesTest, PointsInFiltersInclusive) {
  Series s("t.window", 16);
  for (int i = 0; i < 10; ++i) s.push(double(i), double(i));
  const auto win = s.points_in(3.0, 6.0);
  ASSERT_EQ(win.size(), 4u);
  EXPECT_DOUBLE_EQ(win.front().t, 3.0);
  EXPECT_DOUBLE_EQ(win.back().t, 6.0);
}

TEST(TimeseriesTest, StoreGetOrCreateAndFind) {
  TimeseriesStore store(8);
  Series& a = store.series("x");
  Series& again = store.series("x");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(store.find("x"), &a);
  EXPECT_EQ(store.find("absent"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TimeseriesTest, CounterBecomesWindowedRate) {
  MetricsRegistry m;
  TimeseriesStore store;
  Sampler sampler(&m, &store);
  Counter* c = m.counter("t.events");

  c->add(10);
  sampler.sample(0.0);  // baseline: no rate yet
  EXPECT_EQ(store.find("t.events.rate"), nullptr);

  c->add(30);
  sampler.sample(10.0);  // 30 events over 10 s
  const Series* rate = store.find("t.events.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->last().v, 3.0);
}

TEST(TimeseriesTest, CounterResetChargesFullCurrentValue) {
  // A value below the previous snapshot means the source restarted; the
  // window's delta is the full current value, never a negative rate.
  // Counters are monotone through the public API, so drive the value
  // backwards the only way an unsigned atomic allows: wraparound.
  MetricsRegistry m;
  TimeseriesStore store;
  Sampler sampler(&m, &store);
  Counter* c = m.counter("t.resets");
  c->add(100);
  sampler.sample(0.0);

  c->add(~std::uint64_t{0} - 92);  // 100 + (2^64 - 93) wraps to 7
  ASSERT_EQ(c->value(), 7u);
  sampler.sample(10.0);
  const Series* rate = store.find("t.resets.rate");
  ASSERT_NE(rate, nullptr);
  // The window's delta is the full post-reset value 7, not 7 - 100.
  EXPECT_DOUBLE_EQ(rate->last().v, 0.7);
}

TEST(TimeseriesTest, GaugeSamplesLastValue) {
  MetricsRegistry m;
  TimeseriesStore store;
  Sampler sampler(&m, &store);
  Gauge* g = m.gauge("t.depth");
  g->set(4.0);
  sampler.sample(0.0);
  g->set(9.0);
  g->set(2.0);
  sampler.sample(1.0);
  const Series* s = store.find("t.depth");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 2u);
  EXPECT_DOUBLE_EQ(s->points()[0].v, 4.0);
  EXPECT_DOUBLE_EQ(s->points()[1].v, 2.0);
}

TEST(TimeseriesTest, HistogramWindowQuantiles) {
  MetricsRegistry m;
  TimeseriesStore store;
  Sampler sampler(&m, &store);
  Histogram* h =
      m.histogram("t.lat", Histogram::exponential_buckets(1.0, 2.0, 8));

  for (int i = 0; i < 100; ++i) h->observe(1.5);
  sampler.sample(0.0);  // baseline

  // Window 2: 90 fast + 10 slow observations. p50 stays in the fast
  // bucket; p99 (rank 99 of 100) lands in the slow one — and the
  // baseline's 100 fast observations must not dilute the window.
  for (int i = 0; i < 90; ++i) h->observe(1.5);
  for (int i = 0; i < 10; ++i) h->observe(100.0);
  sampler.sample(10.0);

  const Series* p50 = store.find("t.lat.p50");
  const Series* p99 = store.find("t.lat.p99");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_LE(p50->last().v, 2.0);
  EXPECT_GT(p99->last().v, 50.0);
  // And the observation rate covers only the window's 101 observations.
  const Series* rate = store.find("t.lat.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->last().v, 10.0);
}

TEST(TimeseriesTest, EmptyHistogramWindowAppendsNoQuantiles) {
  MetricsRegistry m;
  TimeseriesStore store;
  Sampler sampler(&m, &store);
  Histogram* h =
      m.histogram("t.quiet", Histogram::exponential_buckets(1.0, 2.0, 4));
  sampler.sample(0.0);
  h->observe(3.0);
  sampler.sample(1.0);  // window with observations: quantiles appear
  const Series* p99 = store.find("t.quiet.p99");
  ASSERT_NE(p99, nullptr);
  const std::size_t before = p99->size();

  sampler.sample(2.0);  // quiet window: nothing is fabricated
  EXPECT_EQ(p99->size(), before);
  // The rate series does record the quiet window (as zero).
  const Series* rate = store.find("t.quiet.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->last().v, 0.0);
}

TEST(TimeseriesTest, MinIntervalThrottleSkipsDenseTicks) {
  MetricsRegistry m;
  TimeseriesStore store;
  Sampler::Config cfg;
  cfg.min_interval_s = 5.0;
  Sampler sampler(&m, &store, cfg);
  m.gauge("t.g")->set(1.0);

  EXPECT_GT(sampler.sample(0.0), 0u);   // baseline always lands
  EXPECT_EQ(sampler.sample(1.0), 0u);   // too close: skipped entirely
  EXPECT_EQ(sampler.sample(4.99), 0u);  // still inside the throttle
  EXPECT_GT(sampler.sample(5.0), 0u);   // window boundary samples
  EXPECT_EQ(sampler.samples(), 2u);
  EXPECT_EQ(store.series("t.g").size(), 2u);
}

TEST(TimeseriesTest, SamplerBackwardsClockIsACheckError) {
  MetricsRegistry m;
  TimeseriesStore store;
  Sampler sampler(&m, &store);
  m.gauge("t.g")->set(1.0);
  sampler.sample(10.0);
  EXPECT_THROW(sampler.sample(9.0), CheckError);
}

TEST(TimeseriesTest, ConcurrentReadersSeeConsistentSeries) {
  // One writer pushing monotone points, three readers snapshotting — the
  // per-series mutex must keep every snapshot internally ordered.
  Series s("t.race", 64);
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) s.push(double(i), double(i));
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const std::vector<SamplePoint> pts = s.points();
        for (std::size_t k = 1; k < pts.size(); ++k) {
          ASSERT_LE(pts[k - 1].t, pts[k].t);
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(s.total_pushed(), 2000u);
}

}  // namespace
