// Cross-module property tests: adversarial delta-codec inputs, wire-format
// robustness against corruption, model monotonicity laws, and snapshot
// algebra. These complement the per-module suites with the invariants a
// downstream user implicitly relies on.
#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/checkpoint_file.h"
#include "common/check.h"
#include "common/rng.h"
#include "delta/xdelta3.h"
#include "delta/xor_delta.h"
#include "mem/snapshot.h"
#include "model/exp_math.h"
#include "model/interval_models.h"
#include "model/markov_chain.h"
#include "model/moody.h"

namespace aic {
namespace {

// ---- adversarial delta inputs ----

class AdversarialDelta : public ::testing::TestWithParam<int> {
 protected:
  static Bytes make_input(int kind, Rng& rng, std::size_t n) {
    Bytes b(n);
    switch (kind) {
      case 0:  // all zeros
        break;
      case 1:  // single repeated byte
        std::fill(b.begin(), b.end(), 0x5A);
        break;
      case 2:  // short period (every block hashes equal)
        for (std::size_t i = 0; i < n; ++i) b[i] = std::uint8_t(i % 4);
        break;
      case 3:  // period equal to the default block size
        for (std::size_t i = 0; i < n; ++i) b[i] = std::uint8_t(i % 64);
        break;
      case 4:  // random
        for (auto& x : b) x = std::uint8_t(rng());
        break;
      case 5:  // long zero run with a random island
        for (std::size_t i = n / 3; i < n / 2; ++i)
          b[i] = std::uint8_t(rng());
        break;
      default:
        break;
    }
    return b;
  }
};

TEST_P(AdversarialDelta, AllSourceTargetPairsRoundTrip) {
  Rng rng(std::uint64_t(GetParam()) + 100);
  delta::XDelta3Codec xd;
  delta::XorDeltaCodec xr;
  for (int src_kind = 0; src_kind <= 5; ++src_kind) {
    Bytes src = make_input(src_kind, rng, 4096 + rng.uniform_u64(4096));
    Bytes tgt = make_input(GetParam(), rng, 4096 + rng.uniform_u64(4096));
    for (delta::DeltaCodec* codec :
         {static_cast<delta::DeltaCodec*>(&xd),
          static_cast<delta::DeltaCodec*>(&xr)}) {
      Bytes d = codec->encode(src, tgt);
      ASSERT_EQ(codec->decode(src, d), tgt)
          << codec->name() << " src_kind=" << src_kind
          << " tgt_kind=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TargetKinds, AdversarialDelta,
                         ::testing::Range(0, 6));

TEST(AdversarialDelta, BlockSizeSweepRoundTrips) {
  Rng rng(7);
  Bytes src(16384), tgt;
  for (auto& x : src) x = std::uint8_t(rng());
  tgt = src;
  for (int e = 0; e < 20; ++e) tgt[rng.uniform_u64(tgt.size())] ^= 0xFF;
  for (std::size_t bs : {4u, 8u, 16u, 32u, 64u, 128u, 512u, 4096u}) {
    delta::XDelta3Codec codec(
        delta::XDelta3Config{.block_size = bs, .max_probes = 4,
                             .min_match = bs / 2 + 1});
    Bytes d = codec.encode(src, tgt);
    EXPECT_EQ(codec.decode(src, d), tgt) << "block_size " << bs;
  }
}

TEST(AdversarialDelta, DeltaNeverGrowsBeyondTargetPlusSlack) {
  // Worst case (incompressible target): the instruction stream adds only
  // header + op overhead, never blow-up.
  Rng rng(8);
  delta::XDelta3Codec xd;
  delta::XorDeltaCodec xr;
  for (int trial = 0; trial < 10; ++trial) {
    Bytes src(1024), tgt(8192);
    for (auto& x : src) x = std::uint8_t(rng());
    for (auto& x : tgt) x = std::uint8_t(rng());
    EXPECT_LE(xd.encode(src, tgt).size(), tgt.size() + 64);
    EXPECT_LE(xr.encode(src, tgt).size(), 2 * tgt.size() + 64);
  }
}

// ---- wire-format corruption ----

TEST(WireCorruption, CheckpointParseNeverMisbehaves) {
  // Any single-byte corruption either still parses (payload bytes) or
  // raises CheckError — never crashes or loops.
  ckpt::CheckpointFile f;
  f.kind = ckpt::CheckpointKind::kIncrementalDelta;
  f.sequence = 12;
  f.app_time = 3.5;
  f.cpu_state = {9, 8, 7};
  f.freed_pages = {1, 5, 6};
  f.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const Bytes wire = f.serialize();
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = wire;
    mutated[rng.uniform_u64(mutated.size())] ^= std::uint8_t(1 + rng() % 255);
    try {
      (void)ckpt::CheckpointFile::parse(mutated);
    } catch (const CheckError&) {
      // rejected — fine
    }
  }
  // Truncations at every length likewise.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes prefix(wire.begin(), wire.begin() + std::ptrdiff_t(len));
    EXPECT_THROW((void)ckpt::CheckpointFile::parse(prefix), CheckError);
  }
}

TEST(WireCorruption, DeltaDecodeRejectsGarbage) {
  Rng rng(10);
  delta::XDelta3Codec codec;
  Bytes src(512, 3);
  Bytes tgt(512, 4);
  Bytes d = codec.encode(src, tgt);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = d;
    mutated[rng.uniform_u64(mutated.size())] ^= std::uint8_t(1 + rng() % 255);
    try {
      Bytes out = codec.decode(src, mutated);
      // If it decodes, the header length checks held; size must match.
      EXPECT_EQ(out.size(), tgt.size());
    } catch (const CheckError&) {
    }
  }
}

// ---- model monotonicity laws ----

TEST(ModelLaws, IntervalTimeMonotoneInRecoveryCost) {
  auto sys = model::SystemProfile::coastal();
  auto slow = sys;
  slow.r = {sys.r[0] * 4, sys.r[1] * 4, sys.r[2] * 4};
  const double w = 3000.0;
  EXPECT_LT(model::expected_interval_time(model::LevelCombo::kL2L3, sys, w),
            model::expected_interval_time(model::LevelCombo::kL2L3, slow, w));
}

TEST(ModelLaws, MoodyPeriodMonotoneInW) {
  auto sys = model::SystemProfile::coastal();
  double prev = 0.0;
  for (double w : {500.0, 1000.0, 2000.0, 4000.0}) {
    const double t = model::moody_period_time(sys, w, 1, 1);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(ModelLaws, MoodyFailureFreeClosedFormForAnyCounts) {
  auto sys = model::SystemProfile::coastal();
  sys.lambda = {0.0, 0.0, 0.0};
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const int n1 = int(rng.uniform_u64(4));
    const int n2 = int(rng.uniform_u64(4));
    const int total = (n1 + 1) * (n2 + 1);
    // Count checkpoint costs by level along the schedule.
    double cost = 0.0;
    for (int j = 1; j <= total; ++j) {
      int lvl = 1;
      if (j == total) {
        lvl = 3;
      } else if (j % (n1 + 1) == 0) {
        lvl = 2;
      }
      cost += sys.c[lvl - 1];
    }
    const double w = 1000.0;
    EXPECT_NEAR(model::moody_period_time(sys, w, n1, n2),
                double(total) * w + cost, 1e-6)
        << "n1=" << n1 << " n2=" << n2;
  }
}

TEST(ModelLaws, TailTimeMonotoneAndFailureFreeExact) {
  auto sys = model::SystemProfile::coastal();
  const auto p = model::IntervalParams::from_profile(sys);
  EXPECT_LT(model::expected_tail_time(sys, 100.0, p),
            model::expected_tail_time(sys, 10000.0, p));
  auto quiet = sys;
  quiet.lambda = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(model::expected_tail_time(quiet, 777.0, p), 777.0);
  EXPECT_DOUBLE_EQ(model::expected_tail_time(sys, 0.0, p), 0.0);
}

TEST(ModelLaws, VisitsConsistentWithTime) {
  // Expected time equals sum over states of visits * per-visit dwell for a
  // chain where every state has the same duration — a consistency law
  // between the two solver outputs.
  const double lambda = 0.01, tau = 10.0;
  model::MarkovChain m({lambda});
  auto a = m.add_state(tau);
  auto b = m.add_state(tau);
  m.set_success(a, b);
  m.set_failure(a, 1, a);
  m.set_success(b, model::MarkovChain::kDone);
  m.set_failure(b, 1, a);
  const auto visits = m.expected_visits(a);
  const double ps = model::p_no_failure(lambda, tau);
  const double dwell = ps * tau + (1 - ps) * model::expected_failure_time(
                                                 lambda, tau);
  const double from_visits = (visits[0] + visits[1]) * dwell;
  EXPECT_NEAR(m.expected_time(a), from_visits, 1e-9 * from_visits);
}

// ---- snapshot algebra ----

TEST(SnapshotAlgebra, OverlayIsLastWriterWins) {
  Rng rng(12);
  mem::AddressSpace s;
  s.allocate_range(0, 4);
  mem::Snapshot base = mem::Snapshot::capture(s);

  mem::Snapshot a, b;
  Bytes pa(kPageSize, 1), pb(kPageSize, 2);
  a.put_page(1, pa);
  b.put_page(1, pb);
  b.put_page(2, pb);

  mem::Snapshot left;  // (base + a) + b
  base.overlay_onto(left);
  a.overlay_onto(left);
  b.overlay_onto(left);
  EXPECT_EQ(left.page_bytes(1)[0], 2);
  EXPECT_EQ(left.page_bytes(2)[0], 2);
  EXPECT_EQ(left.page_bytes(0)[0], 0);
  EXPECT_EQ(left.page_count(), 4u);
}

TEST(SnapshotAlgebra, PutPageReplaces) {
  mem::Snapshot snap;
  Bytes v1(kPageSize, 1), v2(kPageSize, 9);
  snap.put_page(7, v1);
  snap.put_page(7, v2);
  EXPECT_EQ(snap.page_count(), 1u);
  EXPECT_EQ(snap.page_bytes(7)[100], 9);
}

}  // namespace
}  // namespace aic
