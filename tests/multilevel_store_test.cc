// Tests for storage::MultiLevelStore — checkpoint placement across the
// three levels and recovery after each failure class, including the RAID-5
// reconstruction path and reseeding after catastrophic loss.
#include <gtest/gtest.h>

#include "ckpt/checkpointer.h"
#include "common/rng.h"
#include "mem/snapshot.h"
#include "storage/multilevel_store.h"

namespace aic::storage {
namespace {

/// Builds a chain of checkpoint files from a mutating space and stores
/// each one; returns the final state for verification.
struct StoredJob {
  std::vector<ckpt::CheckpointFile> files;
  mem::Snapshot final_state;
};

StoredJob store_job(MultiLevelStore& store, int increments, Rng& rng) {
  mem::AddressSpace space;
  space.allocate_range(0, 32);
  for (mem::PageId id = 0; id < 32; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::CheckpointChain chain;
  StoredJob job;
  chain.capture(space, {}, 0.0);
  store.put_checkpoint(chain.files().back());
  space.protect_all();
  for (int i = 1; i <= increments; ++i) {
    Bytes edit(64);
    for (auto& x : edit) x = std::uint8_t(rng());
    space.write(rng.uniform_u64(32), rng.uniform_u64(kPageSize - 64), edit);
    chain.capture(space, {}, double(i));
    store.put_checkpoint(chain.files().back());
    space.protect_all();
  }
  job.files = chain.files();
  job.final_state = mem::Snapshot::capture(space);
  return job;
}

mem::Snapshot restore_from(const MultiLevelStore::Recovery& rec) {
  delta::PageAlignedCompressor pa;
  return ckpt::RestartEngine::restore(rec.chain, pa).memory;
}

TEST(MultiLevelStore, PlacementReachesAllLevelsWithSaneTimes) {
  MultiLevelStore store;
  Rng rng(1);
  store_job(store, 3, rng);
  EXPECT_EQ(store.checkpoints_stored(), 4u);
  EXPECT_GT(store.local().stored_bytes(), 0u);
  EXPECT_GT(store.raid().stored_bytes(), 0u);
  EXPECT_GT(store.remote().stored_bytes(), 0u);
  // Remote is the slow path.
  ckpt::CheckpointFile probe;
  probe.payload.assign(1000000, 7);
  const auto times = store.put_checkpoint(probe);
  EXPECT_GT(times.remote, times.local);
  EXPECT_GT(times.remote, times.raid);
}

TEST(MultiLevelStore, RecoverPrefersLocal) {
  MultiLevelStore store;
  Rng rng(2);
  auto job = store_job(store, 4, rng);
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 1);
  EXPECT_TRUE(job.final_state.equals_space(
      restore_from(*rec).materialize()));
}

TEST(MultiLevelStore, Level2FailureFallsBackToRaidWithRebuild) {
  MultiLevelStore store;
  Rng rng(3);
  auto job = store_job(store, 4, rng);
  store.apply_failure(2, rng);
  EXPECT_EQ(store.local().stored_bytes(), 0u);  // replacement disk is empty
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 2);
  EXPECT_TRUE(job.final_state.equals_space(
      restore_from(*rec).materialize()));
}

TEST(MultiLevelStore, Level3FailureOnlyRemoteSurvives) {
  MultiLevelStore store;
  Rng rng(4);
  auto job = store_job(store, 4, rng);
  store.apply_failure(3, rng);
  EXPECT_FALSE(store.raid().available());
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 3);
  EXPECT_TRUE(job.final_state.equals_space(
      restore_from(*rec).materialize()));
}

TEST(MultiLevelStore, ReseedRestoresLowerLevelsAfterCatastrophe) {
  MultiLevelStore store;
  Rng rng(5);
  auto job = store_job(store, 3, rng);
  store.apply_failure(3, rng);
  store.repair_raid_group();
  const auto copied = store.reseed_from_remote();
  EXPECT_GT(copied, 0u);
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 1) << "local should be reseeded and preferred";
  EXPECT_TRUE(job.final_state.equals_space(
      restore_from(*rec).materialize()));
}

TEST(MultiLevelStore, EmptyStoreHasNothingToRecover) {
  MultiLevelStore store;
  EXPECT_FALSE(store.recover().has_value());
}

TEST(MultiLevelStore, PartialLocalChainFallsBackDeeper) {
  // Write three checkpoints; wipe the local disk mid-way by a level-2
  // failure, then take MORE checkpoints (local now has only the tail,
  // which lacks its full ancestor) — recovery must come from a deeper
  // level that holds the complete chain.
  MultiLevelStore store;
  Rng rng(6);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  ckpt::CheckpointChain chain;
  chain.capture(space, {}, 0.0);
  store.put_checkpoint(chain.files().back());
  space.protect_all();

  Bytes edit = {1, 2, 3};
  space.write(5, 0, edit);
  chain.capture(space, {}, 1.0);
  store.put_checkpoint(chain.files().back());
  space.protect_all();

  store.apply_failure(2, rng);  // local gone; raid survived (rebuilt)

  space.write(9, 0, edit);
  chain.capture(space, {}, 2.0);
  store.put_checkpoint(chain.files().back());
  space.protect_all();

  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 2)
      << "local holds only an incremental without its full ancestor";
  EXPECT_TRUE(mem::Snapshot::capture(space).equals_space(
      restore_from(*rec).materialize()));
}

// ---------- rewind-window reclamation ----------

/// Applies one chain prune to the store: the victim's objects are erased
/// at every level and, when the prune re-anchored the successor, the
/// stored successor is rewritten with the new full file.
void apply_prune(MultiLevelStore& store, const ckpt::CheckpointChain& chain) {
  const auto& ev = chain.last_prune();
  ASSERT_TRUE(ev.has_value());
  const ckpt::CheckpointFile* reanchored = nullptr;
  if (ev->reanchored_sequence.has_value()) {
    for (const ckpt::CheckpointFile& f : chain.files()) {
      if (f.sequence == *ev->reanchored_sequence) {
        reanchored = &f;
        break;
      }
    }
    ASSERT_NE(reanchored, nullptr);
  }
  store.reclaim_checkpoint(ev->victim_sequence, reanchored);
}

TEST(RewindStore, ReclaimBoundsStorageAndKeepsRecoveryRestorable) {
  MultiLevelStore store;
  Rng rng(0x2EC1);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  ckpt::CheckpointChain::Config cfg;
  cfg.full_period = 0;  // every prune of a delta successor must re-anchor
  cfg.rewind_budget = 4;
  ckpt::CheckpointChain chain(cfg);
  for (int i = 0; i < 15; ++i) {
    chain.capture(space, {}, double(i + 1));
    store.put_checkpoint(chain.files().back());
    if (i >= int(cfg.rewind_budget)) apply_prune(store, chain);
    space.protect_all();
    Bytes edit(64);
    for (auto& x : edit) x = std::uint8_t(rng());
    space.write(rng.uniform_u64(16), rng.uniform_u64(kPageSize - 64), edit);

    // Storage is bounded: each level holds exactly the window's live set.
    std::size_t local_objects = 0;
    for (std::uint64_t s : chain.rewind().live_sequences()) {
      local_objects += store.local().get("ckpt-" + std::to_string(s))
                           .has_value();
    }
    ASSERT_EQ(local_objects, chain.rewind().size());

    auto rec = store.recover();
    ASSERT_TRUE(rec.has_value());
    ASSERT_EQ(rec->chain.front().kind, ckpt::CheckpointKind::kFull);
    ASSERT_TRUE(chain.last_state().equals_space(
        restore_from(*rec).materialize()));
  }
  EXPECT_GT(chain.rewind().discards(), 0u);
}

TEST(RewindStore, ReclaimResubmitsUnfinishedSuccessorDrains) {
  MultiLevelStore store;
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  ckpt::CheckpointChain::Config cfg;
  cfg.full_period = 0;
  cfg.rewind_budget = 4;
  ckpt::CheckpointChain chain(cfg);
  // Queue drains without draining them: when the window first overflows,
  // the successor's L2/L3 transfers still carry the stale delta bytes.
  for (int i = 0; i < 5; ++i) {
    chain.capture(space, {}, double(i + 1));
    store.put_checkpoint_async(chain.files().back());
    space.protect_all();
    space.write(i % 16, 0, Bytes(32, std::uint8_t(i + 1)));
  }
  apply_prune(store, chain);
  store.xfer().run_until_idle();

  // Whatever the drains committed must match the re-anchored chain: the
  // successor's remote object is a parseable FULL checkpoint, and recovery
  // (after losing the local level) restores the newest state.
  const auto& ev = chain.last_prune();
  ASSERT_TRUE(ev->reanchored_sequence.has_value());
  auto remote_bytes =
      store.remote().get("ckpt-" + std::to_string(*ev->reanchored_sequence));
  ASSERT_TRUE(remote_bytes.has_value());
  EXPECT_EQ(ckpt::CheckpointFile::parse(*remote_bytes).kind,
            ckpt::CheckpointKind::kFull);
  EXPECT_FALSE(
      store.remote().get("ckpt-" + std::to_string(ev->victim_sequence))
          .has_value());

  Rng rng(7);
  store.apply_failure(2, rng);
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  ASSERT_GE(rec->level_used, 2);
  EXPECT_TRUE(chain.last_state().equals_space(
      restore_from(*rec).materialize()));
}

TEST(RewindStore, ReclaimingTheNewestCheckpointIsRejected) {
  MultiLevelStore store;
  mem::AddressSpace space;
  space.allocate(0);
  ckpt::CheckpointChain chain;
  chain.capture(space, {}, 1.0);
  store.put_checkpoint(chain.files().back());
  EXPECT_THROW((void)store.reclaim_checkpoint(0), CheckError);
}

}  // namespace
}  // namespace aic::storage
