// Tests for storage::MultiLevelStore — checkpoint placement across the
// three levels and recovery after each failure class, including the RAID-5
// reconstruction path and reseeding after catastrophic loss.
#include <gtest/gtest.h>

#include "ckpt/checkpointer.h"
#include "common/rng.h"
#include "mem/snapshot.h"
#include "storage/multilevel_store.h"

namespace aic::storage {
namespace {

/// Builds a chain of checkpoint files from a mutating space and stores
/// each one; returns the final state for verification.
struct StoredJob {
  std::vector<ckpt::CheckpointFile> files;
  mem::Snapshot final_state;
};

StoredJob store_job(MultiLevelStore& store, int increments, Rng& rng) {
  mem::AddressSpace space;
  space.allocate_range(0, 32);
  for (mem::PageId id = 0; id < 32; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::CheckpointChain chain;
  StoredJob job;
  chain.capture(space, {}, 0.0);
  store.put_checkpoint(chain.files().back());
  space.protect_all();
  for (int i = 1; i <= increments; ++i) {
    Bytes edit(64);
    for (auto& x : edit) x = std::uint8_t(rng());
    space.write(rng.uniform_u64(32), rng.uniform_u64(kPageSize - 64), edit);
    chain.capture(space, {}, double(i));
    store.put_checkpoint(chain.files().back());
    space.protect_all();
  }
  job.files = chain.files();
  job.final_state = mem::Snapshot::capture(space);
  return job;
}

mem::Snapshot restore_from(const MultiLevelStore::Recovery& rec) {
  delta::PageAlignedCompressor pa;
  return ckpt::RestartEngine::restore(rec.chain, pa).memory;
}

TEST(MultiLevelStore, PlacementReachesAllLevelsWithSaneTimes) {
  MultiLevelStore store;
  Rng rng(1);
  store_job(store, 3, rng);
  EXPECT_EQ(store.checkpoints_stored(), 4u);
  EXPECT_GT(store.local().stored_bytes(), 0u);
  EXPECT_GT(store.raid().stored_bytes(), 0u);
  EXPECT_GT(store.remote().stored_bytes(), 0u);
  // Remote is the slow path.
  ckpt::CheckpointFile probe;
  probe.payload.assign(1000000, 7);
  const auto times = store.put_checkpoint(probe);
  EXPECT_GT(times.remote, times.local);
  EXPECT_GT(times.remote, times.raid);
}

TEST(MultiLevelStore, RecoverPrefersLocal) {
  MultiLevelStore store;
  Rng rng(2);
  auto job = store_job(store, 4, rng);
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 1);
  EXPECT_TRUE(job.final_state.equals_space(
      restore_from(*rec).materialize()));
}

TEST(MultiLevelStore, Level2FailureFallsBackToRaidWithRebuild) {
  MultiLevelStore store;
  Rng rng(3);
  auto job = store_job(store, 4, rng);
  store.apply_failure(2, rng);
  EXPECT_EQ(store.local().stored_bytes(), 0u);  // replacement disk is empty
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 2);
  EXPECT_TRUE(job.final_state.equals_space(
      restore_from(*rec).materialize()));
}

TEST(MultiLevelStore, Level3FailureOnlyRemoteSurvives) {
  MultiLevelStore store;
  Rng rng(4);
  auto job = store_job(store, 4, rng);
  store.apply_failure(3, rng);
  EXPECT_FALSE(store.raid().available());
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 3);
  EXPECT_TRUE(job.final_state.equals_space(
      restore_from(*rec).materialize()));
}

TEST(MultiLevelStore, ReseedRestoresLowerLevelsAfterCatastrophe) {
  MultiLevelStore store;
  Rng rng(5);
  auto job = store_job(store, 3, rng);
  store.apply_failure(3, rng);
  store.repair_raid_group();
  const auto copied = store.reseed_from_remote();
  EXPECT_GT(copied, 0u);
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 1) << "local should be reseeded and preferred";
  EXPECT_TRUE(job.final_state.equals_space(
      restore_from(*rec).materialize()));
}

TEST(MultiLevelStore, EmptyStoreHasNothingToRecover) {
  MultiLevelStore store;
  EXPECT_FALSE(store.recover().has_value());
}

TEST(MultiLevelStore, PartialLocalChainFallsBackDeeper) {
  // Write three checkpoints; wipe the local disk mid-way by a level-2
  // failure, then take MORE checkpoints (local now has only the tail,
  // which lacks its full ancestor) — recovery must come from a deeper
  // level that holds the complete chain.
  MultiLevelStore store;
  Rng rng(6);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  ckpt::CheckpointChain chain;
  chain.capture(space, {}, 0.0);
  store.put_checkpoint(chain.files().back());
  space.protect_all();

  Bytes edit = {1, 2, 3};
  space.write(5, 0, edit);
  chain.capture(space, {}, 1.0);
  store.put_checkpoint(chain.files().back());
  space.protect_all();

  store.apply_failure(2, rng);  // local gone; raid survived (rebuilt)

  space.write(9, 0, edit);
  chain.capture(space, {}, 2.0);
  store.put_checkpoint(chain.files().back());
  space.protect_all();

  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 2)
      << "local holds only an incremental without its full ancestor";
  EXPECT_TRUE(mem::Snapshot::capture(space).equals_space(
      restore_from(*rec).materialize()));
}

}  // namespace
}  // namespace aic::storage
