// The bench_diff bootstrap engine: regression/improvement/neutral verdicts
// must respect the metric's direction, survive noise without false alarms,
// and degenerate sensibly for single-sample (deterministic) metrics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/bench_diff.h"

namespace aic::obs {
namespace {

BenchRecord record_with(const std::string& name,
                        const std::vector<double>& samples,
                        bool higher_is_better = false) {
  BenchRecord rec = make_bench_record("t", false);
  BenchMetric& m = rec.metric(name, "s", higher_is_better);
  m.samples = samples;
  return rec;
}

/// `n` samples around `center` with +/- `jitter` uniform noise.
std::vector<double> noisy(double center, double jitter, int n,
                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    const double u = double(rng.uniform_u64(1000001)) / 1e6;  // [0, 1]
    out.push_back(center + jitter * (2.0 * u - 1.0));
  }
  return out;
}

const MetricDiff& only_metric(const RecordDiff& d) {
  EXPECT_EQ(d.metrics.size(), 1u);
  return d.metrics.front();
}

TEST(BenchDiff, SelfDiffIsAllNeutral) {
  BenchRecord rec = record_with("m", noisy(1.0, 0.05, 9, 1));
  rec.metric("k", "B/s", true).samples = {5.0, 5.1, 4.9};
  const RecordDiff d = diff_records(rec, rec);
  EXPECT_EQ(d.regressions, 0u);
  EXPECT_EQ(d.improvements, 0u);
  EXPECT_EQ(d.neutral, 2u);
  EXPECT_FALSE(d.has_regression());
  EXPECT_FALSE(d.provenance_mismatch);
}

TEST(BenchDiff, DetectsClearRegression) {
  const BenchRecord base = record_with("lat", noisy(1.0, 0.02, 9, 2));
  const BenchRecord cur = record_with("lat", noisy(1.30, 0.02, 9, 3));
  const RecordDiff d = diff_records(base, cur);
  const MetricDiff& m = only_metric(d);
  EXPECT_EQ(m.verdict, DiffVerdict::kRegression);
  EXPECT_GT(m.badness_lo, 0.10) << "whole CI must clear the threshold";
  EXPECT_NEAR(m.rel_change, 0.30, 0.05);
  EXPECT_EQ(d.regressions, 1u);
  EXPECT_TRUE(d.has_regression());
}

TEST(BenchDiff, DetectsClearImprovement) {
  const BenchRecord base = record_with("lat", noisy(1.0, 0.02, 9, 4));
  const BenchRecord cur = record_with("lat", noisy(0.70, 0.02, 9, 5));
  const RecordDiff d = diff_records(base, cur);
  EXPECT_EQ(only_metric(d).verdict, DiffVerdict::kImprovement);
  EXPECT_EQ(d.improvements, 1u);
  EXPECT_FALSE(d.has_regression());
}

TEST(BenchDiff, NoiseWiderThanShiftStaysNeutral) {
  // A 10% median shift inside +/- 40% noise: the bootstrap CI must
  // straddle the threshold, so no verdict either way.
  const BenchRecord base = record_with("lat", noisy(1.0, 0.4, 9, 6));
  const BenchRecord cur = record_with("lat", noisy(1.1, 0.4, 9, 7));
  const RecordDiff d = diff_records(base, cur);
  EXPECT_EQ(only_metric(d).verdict, DiffVerdict::kNeutral);
  EXPECT_EQ(d.neutral, 1u);
}

TEST(BenchDiff, DirectionFlipsTheVerdict) {
  // goodput (higher is better) dropping 30% is a regression...
  const BenchRecord base =
      record_with("goodput", noisy(100.0, 1.0, 9, 8), true);
  const BenchRecord down =
      record_with("goodput", noisy(70.0, 1.0, 9, 9), true);
  EXPECT_EQ(only_metric(diff_records(base, down)).verdict,
            DiffVerdict::kRegression);
  // ...and rising 30% is an improvement.
  const BenchRecord up =
      record_with("goodput", noisy(130.0, 1.0, 9, 10), true);
  EXPECT_EQ(only_metric(diff_records(base, up)).verdict,
            DiffVerdict::kImprovement);
}

TEST(BenchDiff, SingleSamplePointComparison) {
  // Deterministic metrics (one sample each side) compare point-to-point.
  EXPECT_EQ(only_metric(diff_records(record_with("m", {1.0}),
                                     record_with("m", {1.25})))
                .verdict,
            DiffVerdict::kRegression);
  EXPECT_EQ(only_metric(diff_records(record_with("m", {1.0}),
                                     record_with("m", {1.05})))
                .verdict,
            DiffVerdict::kNeutral);
  EXPECT_EQ(only_metric(diff_records(record_with("m", {1.0}),
                                     record_with("m", {0.80})))
                .verdict,
            DiffVerdict::kImprovement);
}

TEST(BenchDiff, ThresholdIsConfigurable) {
  DiffOptions strict;
  strict.threshold = 0.02;
  EXPECT_EQ(only_metric(diff_records(record_with("m", {1.0}),
                                     record_with("m", {1.05}), strict))
                .verdict,
            DiffVerdict::kRegression);
  DiffOptions loose;
  loose.threshold = 0.50;
  EXPECT_EQ(only_metric(diff_records(record_with("m", {1.0}),
                                     record_with("m", {1.25}), loose))
                .verdict,
            DiffVerdict::kNeutral);
}

TEST(BenchDiff, UnpairedMetricsNeverCountAsRegression) {
  BenchRecord base = record_with("gone", {1.0});
  BenchRecord cur = record_with("new", {2.0});
  const RecordDiff d = diff_records(base, cur);
  ASSERT_EQ(d.metrics.size(), 2u);
  // Current-record order first, then baseline-only.
  EXPECT_EQ(d.metrics[0].name, "new");
  EXPECT_EQ(d.metrics[0].verdict, DiffVerdict::kOnlyCurrent);
  EXPECT_EQ(d.metrics[1].name, "gone");
  EXPECT_EQ(d.metrics[1].verdict, DiffVerdict::kOnlyBaseline);
  EXPECT_EQ(d.regressions, 0u);
  EXPECT_FALSE(d.has_regression());
}

TEST(BenchDiff, ProvenanceMismatchIsFlagged) {
  BenchRecord base = record_with("m", {1.0});
  BenchRecord cur = record_with("m", {1.0});
  cur.build.sanitizer = "address";
  EXPECT_TRUE(diff_records(base, cur).provenance_mismatch);
}

TEST(BenchDiff, DeterministicAcrossRuns) {
  const BenchRecord base = record_with("m", noisy(1.0, 0.1, 9, 11));
  const BenchRecord cur = record_with("m", noisy(1.15, 0.1, 9, 12));
  const RecordDiff a = diff_records(base, cur);
  const RecordDiff b = diff_records(base, cur);
  EXPECT_DOUBLE_EQ(only_metric(a).badness_lo, only_metric(b).badness_lo);
  EXPECT_DOUBLE_EQ(only_metric(a).badness_hi, only_metric(b).badness_hi);
  EXPECT_EQ(only_metric(a).verdict, only_metric(b).verdict);
}

TEST(BenchDiff, VerdictToString) {
  EXPECT_STREQ(to_string(DiffVerdict::kRegression), "REGRESSION");
  EXPECT_STREQ(to_string(DiffVerdict::kNeutral), "neutral");
}

}  // namespace
}  // namespace aic::obs
