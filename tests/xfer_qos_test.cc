// Tests for per-tenant QoS in the transfer engine: reservation-set
// validation (typed ReservationError, table untouched on rejection),
// weighted residual sharing, hard reservations as dedicated lanes under
// contention, starvation semantics when reservations consume the whole
// channel, and the per-transfer interrupt/resume used by the fleet layer
// to model failures striking one job mid-drain.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/multilevel_store.h"
#include "xfer/channel.h"
#include "xfer/scheduler.h"
#include "xfer/staged_sink.h"

namespace aic::xfer {
namespace {

Bytes pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

struct Harness {
  storage::RemoteStore target{1.0e9};  // publication put is not the wire
  StagedTargetSink sink{target};
  TransferScheduler sched;

  explicit Harness(TransferScheduler::Config cfg = {},
                   Channel::Config ch = {1000.0, 0.0}) {
    sched = TransferScheduler(cfg);
    sched.add_level(3, ch, &sink);
  }
};

TEST(XferQos, RejectsOversubscribedReservationSet) {
  Harness h;
  h.sched.set_tenant_qos(3, 1, TenantQos{1.0, 600.0});

  try {
    h.sched.set_tenant_qos(3, 2, TenantQos{1.0, 500.0});
    FAIL() << "aggregate 1100 bps on a 1000 bps channel must be rejected";
  } catch (const ReservationError& e) {
    EXPECT_EQ(e.level(), 3);
    EXPECT_DOUBLE_EQ(e.reserved_bps(), 1100.0);
    EXPECT_DOUBLE_EQ(e.capacity_bps(), 1000.0);
  }
  // The rejected entry must not have landed: tenant 2 prices as default.
  EXPECT_DOUBLE_EQ(h.sched.tenant_qos(3, 2).reserved_bps, 0.0);
  EXPECT_DOUBLE_EQ(h.sched.tenant_qos(3, 1).reserved_bps, 600.0);

  // Replacing an existing entry re-validates with the replacement applied:
  // growing tenant 1 to the full channel is legal (equality allowed)...
  h.sched.set_tenant_qos(3, 1, TenantQos{1.0, 1000.0});
  EXPECT_DOUBLE_EQ(h.sched.tenant_qos(3, 1).reserved_bps, 1000.0);
  // ...but one byte/s past capacity is not.
  EXPECT_THROW(h.sched.set_tenant_qos(3, 1, TenantQos{1.0, 1000.5}),
               ReservationError);
  EXPECT_DOUBLE_EQ(h.sched.tenant_qos(3, 1).reserved_bps, 1000.0);
}

TEST(XferQos, ValidatesWeightAndReservation) {
  Harness h;
  EXPECT_THROW(h.sched.set_tenant_qos(3, 1, TenantQos{0.0, 0.0}), CheckError);
  EXPECT_THROW(h.sched.set_tenant_qos(3, 1, TenantQos{-1.0, 0.0}), CheckError);
  EXPECT_THROW(h.sched.set_tenant_qos(
                   3, 1,
                   TenantQos{std::numeric_limits<double>::infinity(), 0.0}),
               CheckError);
  EXPECT_THROW(h.sched.set_tenant_qos(3, 1, TenantQos{1.0, -5.0}), CheckError);
  EXPECT_THROW(
      h.sched.set_tenant_qos(
          3, 1, TenantQos{1.0, std::numeric_limits<double>::quiet_NaN()}),
      CheckError);
  EXPECT_THROW(h.sched.set_tenant_qos(7, 1, TenantQos{}), CheckError)
      << "unknown level";
  // Nothing landed.
  EXPECT_DOUBLE_EQ(h.sched.tenant_qos(3, 1).weight, 1.0);
}

TEST(XferQos, SubmitRecordsTenant) {
  Harness h;
  const TransferId a = h.sched.submit(3, "a", pattern_bytes(100, 1), 42);
  const TransferId b = h.sched.submit(3, "b", pattern_bytes(100, 2));
  EXPECT_EQ(h.sched.record(a).tenant, 42u);
  EXPECT_EQ(h.sched.record(b).tenant, 0u) << "default tenant";
}

TEST(XferQos, WeightedTenantsSplitResidualProportionally) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  Harness h(cfg, {1000.0, 0.0});
  h.sched.set_tenant_qos(3, 1, TenantQos{2.0, 0.0});
  h.sched.set_tenant_qos(3, 2, TenantQos{1.0, 0.0});
  const Bytes a = pattern_bytes(1000, 11);
  const Bytes b = pattern_bytes(1000, 12);
  const TransferId ia = h.sched.submit(3, "a", a, 1);
  const TransferId ib = h.sched.submit(3, "b", b, 2);
  h.sched.run_until_idle();

  // While both drain, tenant 1 is priced at 2/3 of the channel and tenant 2
  // at 1/3: tenant 1's 1000 B land at 1.5 s. Tenant 2 has 500 B acked by
  // then and finishes the rest alone at full bandwidth: 1.5 + 0.5 = 2.0 s.
  const TransferRecord& ra = h.sched.record(ia);
  const TransferRecord& rb = h.sched.record(ib);
  ASSERT_EQ(ra.state, TransferState::kCommitted);
  ASSERT_EQ(rb.state, TransferState::kCommitted);
  EXPECT_NEAR(ra.commit_time, 1.5, 1e-9);
  EXPECT_NEAR(rb.commit_time, 2.0, 1e-9);
  EXPECT_EQ(*h.target.get("a"), a);
  EXPECT_EQ(*h.target.get("b"), b);
}

TEST(XferQos, ReservationHonoredUnderEightWayContention) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  Harness h(cfg, {8000.0, 0.0});
  h.sched.set_tenant_qos(3, 1, TenantQos{1.0, 2000.0});

  std::vector<TransferId> ids;
  std::vector<Bytes> payloads;
  for (std::uint64_t t = 1; t <= 8; ++t) {
    payloads.push_back(pattern_bytes(2000, 100 + t));
    ids.push_back(
        h.sched.submit(3, "job" + std::to_string(t), payloads.back(), t));
  }

  // Mid-contention snapshot: the reserved tenant drains at exactly its
  // 2000 bps lane; the seven best-effort tenants split the 6000 bps
  // residual equally (~857 bps each, quantized to whole 100 B chunks).
  h.sched.run_until(0.91);
  EXPECT_EQ(h.sched.record(ids[0]).acked_bytes, 1800u)
      << "reserved lane: ~0.9 s at 2000 bps, whole chunks";
  const std::uint64_t share = h.sched.record(ids[1]).acked_bytes;
  const double expected = 0.91 * 6000.0 / 7.0;
  EXPECT_NEAR(double(share), expected, 120.0)
      << "best-effort share ~ B_residual/N up to chunk granularity";
  for (std::size_t i = 2; i < ids.size(); ++i) {
    EXPECT_EQ(h.sched.record(ids[i]).acked_bytes, share)
        << "equal-weight tenants progress in lockstep";
  }

  h.sched.run_until_idle();
  // The reserved tenant's 2000 B at 2000 bps commit at 1.0 s — the
  // reservation held within far less than the ±10% the SLA promises.
  const TransferRecord& res = h.sched.record(ids[0]);
  ASSERT_EQ(res.state, TransferState::kCommitted);
  EXPECT_NEAR(res.commit_time, 1.0, 0.1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(h.sched.record(ids[i]).state, TransferState::kCommitted);
    EXPECT_EQ(*h.target.get("job" + std::to_string(i + 1)), payloads[i]);
  }
}

TEST(XferQos, FullChannelReservationStarvesBestEffort) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  Harness h(cfg, {1000.0, 0.0});
  h.sched.set_tenant_qos(3, 1, TenantQos{1.0, 1000.0});
  const Bytes a = pattern_bytes(500, 21);
  const Bytes b = pattern_bytes(300, 22);
  const TransferId ia = h.sched.submit(3, "a", a, 1);
  const TransferId ib = h.sched.submit(3, "b", b, 2);

  // While the reserved tenant is active there is no residual: the
  // best-effort attempt is priced at zero bandwidth and never completes —
  // virtual time passes it by (no hang, no division fault).
  h.sched.run_until(5.0);
  EXPECT_EQ(h.sched.record(ia).state, TransferState::kCommitted);
  EXPECT_NEAR(h.sched.record(ia).commit_time, 0.5, 1e-9);
  EXPECT_EQ(h.sched.record(ib).state, TransferState::kInFlight);
  EXPECT_EQ(h.sched.record(ib).acked_bytes, 0u);

  // Interrupt + resume reprices: with the reserved tenant idle its lane is
  // returned to the residual and the starved drain finishes at full speed.
  EXPECT_TRUE(h.sched.interrupt(ib));
  EXPECT_TRUE(h.sched.resume(ib));
  h.sched.run_until_idle();
  const TransferRecord& rb = h.sched.record(ib);
  ASSERT_EQ(rb.state, TransferState::kCommitted);
  EXPECT_NEAR(rb.commit_time, 5.3, 1e-9);
  EXPECT_EQ(*h.target.get("b"), b);
}

TEST(XferQos, PerTransferInterruptAndResume) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  Harness h(cfg);
  const Bytes a = pattern_bytes(1000, 31);
  const Bytes b = pattern_bytes(1000, 32);
  const TransferId ia = h.sched.submit(3, "a", a);
  const TransferId ib = h.sched.submit(3, "b", b);

  h.sched.run_until(0.5);  // both at 200 B acked, 3rd chunks in flight
  EXPECT_TRUE(h.sched.interrupt(ia));
  EXPECT_EQ(h.sched.record(ia).state, TransferState::kInterrupted);
  EXPECT_EQ(h.sched.record(ia).acked_bytes, 200u);
  EXPECT_EQ(h.sched.record(ib).state, TransferState::kInFlight)
      << "a single-job failure leaves the other drain untouched";

  EXPECT_FALSE(h.sched.interrupt(ia)) << "already interrupted";
  EXPECT_FALSE(h.sched.resume(ib)) << "not interrupted";

  EXPECT_TRUE(h.sched.resume(ia));
  EXPECT_FALSE(h.sched.resume(ia)) << "already resumed";
  h.sched.run_until_idle();
  ASSERT_EQ(h.sched.record(ia).state, TransferState::kCommitted);
  ASSERT_EQ(h.sched.record(ib).state, TransferState::kCommitted);
  EXPECT_EQ(*h.target.get("a"), a);
  EXPECT_EQ(*h.target.get("b"), b);

  EXPECT_FALSE(h.sched.interrupt(ia))
      << "interrupt racing a commit is a no-op, not an error";
  EXPECT_THROW(h.sched.interrupt(TransferId{999}), CheckError);
  EXPECT_THROW(h.sched.resume(TransferId{999}), CheckError);
}

}  // namespace
}  // namespace aic::xfer
