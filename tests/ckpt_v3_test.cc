// Tests for checkpoint format v3 (the correcting-coder chain kind) and
// in-place restart reconstruction: capture/serialize/parse round trips,
// version-flip hardening (the v3 CRC covers the magic), in-place vs
// out-of-place restore equivalence over evolving chains, and the
// restart-memory claim — in-place restore must peak at no more than 55%
// of the out-of-place heap high-water mark (measured by the binary-wide
// allocation guard in tests/heap_guard.h).
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "ckpt/checkpoint_file.h"
#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "delta/page_delta.h"
#include "mem/address_space.h"
#include "heap_guard.h"

namespace aic::ckpt {
namespace {

void randomize_page(mem::AddressSpace& space, mem::PageId id, Rng& rng) {
  space.mutate(id, [&](std::span<std::uint8_t> b) {
    for (auto& x : b) x = std::uint8_t(rng());
  });
}

void small_edit(mem::AddressSpace& space, mem::PageId id, Rng& rng) {
  Bytes data(16);
  for (auto& x : data) x = std::uint8_t(rng());
  space.write(id, rng.uniform_u64(kPageSize - data.size()), data);
}

/// Random churn for chain tests: edits, whole-page moves (the workload
/// cdelta records exist for), frees and allocations.
void evolve(mem::AddressSpace& space, Rng& rng, std::size_t id_range) {
  space.protect_all();
  const int edits = 2 + int(rng.uniform_u64(6));
  for (int e = 0; e < edits; ++e) {
    const mem::PageId id = rng.uniform_u64(id_range);
    if (!space.contains(id)) {
      space.allocate(id);
    } else if (rng.bernoulli(0.1)) {
      space.free_page(id);
    } else if (rng.bernoulli(0.25)) {
      // Whole-page move: copy another live page's current image.
      const auto live = space.live_pages();
      const mem::PageId src = live[rng.uniform_u64(live.size())];
      if (src == id) continue;
      Bytes img(space.page_bytes(src).begin(), space.page_bytes(src).end());
      space.write(id, 0, img);
    } else if (rng.bernoulli(0.3)) {
      randomize_page(space, id, rng);
    } else {
      small_edit(space, id, rng);
    }
  }
}

TEST(CheckpointV3, CorrectingChainRoundTripsThroughSerialize) {
  Rng rng(0x33);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  for (mem::PageId id = 0; id < 16; ++id) randomize_page(space, id, rng);

  CheckpointChain::Config cfg;
  cfg.correcting = true;
  CheckpointChain chain(cfg);
  for (int interval = 0; interval < 6; ++interval) {
    if (interval > 0) evolve(space, rng, 20);
    const Bytes cpu = {std::uint8_t(interval)};
    CaptureStats st = chain.capture(space, cpu, double(interval));
    if (interval > 0) {
      EXPECT_EQ(st.kind, CheckpointKind::kIncrementalCorrecting);
    }
  }

  // Serialize + parse every record; correcting incrementals must carry the
  // v3 magic, and the parsed copy must be field-identical.
  bool saw_v3 = false;
  std::vector<CheckpointFile> reloaded;
  for (const CheckpointFile& f : chain.files()) {
    const Bytes wire = f.serialize();
    EXPECT_EQ(wire.size(), f.serialized_size());
    const CheckpointFile g = CheckpointFile::parse(wire);
    EXPECT_EQ(g.kind, f.kind);
    EXPECT_EQ(g.sequence, f.sequence);
    EXPECT_EQ(g.cpu_state, f.cpu_state);
    EXPECT_EQ(g.freed_pages, f.freed_pages);
    EXPECT_EQ(g.payload, f.payload);
    if (f.kind == CheckpointKind::kIncrementalCorrecting) {
      saw_v3 = true;
      EXPECT_EQ(g.version, CheckpointFile::kVersionV3);
      EXPECT_EQ(0, std::memcmp(wire.data(), "AAICCKT3", 8));
    } else {
      // Non-correcting kinds keep the v2 framing byte-for-byte: a chain
      // that never uses the coder is unchanged on disk.
      EXPECT_EQ(0, std::memcmp(wire.data(), "AAICCKT2", 8));
    }
  }
  ASSERT_TRUE(saw_v3);

  // A restore from the reloaded records matches the live space.
  for (const CheckpointFile& f : chain.files())
    reloaded.push_back(CheckpointFile::parse(f.serialize()));
  delta::PageAlignedCompressor pa({}, /*correcting=*/true);
  EXPECT_TRUE(RestartEngine::restore(reloaded, pa).memory.equals_space(space));
}

TEST(CheckpointV3, VersionDigitFlipsCannotForgeAnotherVersion) {
  // The v2 CRC only covered the body, so flipping the version digit used
  // to re-frame a record under another version's rules. The v3 CRC covers
  // the magic too: '3' -> '2' must die on the checksum, and '3' -> '7'
  // must surface as the typed unsupported-version error, never parse.
  Rng rng(0x34);
  mem::AddressSpace space;
  space.allocate_range(0, 4);
  for (mem::PageId id = 0; id < 4; ++id) randomize_page(space, id, rng);
  CheckpointChain::Config cfg;
  cfg.correcting = true;
  CheckpointChain chain(cfg);
  chain.capture(space, {}, 0.0);
  space.protect_all();
  small_edit(space, 1, rng);
  chain.capture(space, {}, 1.0);
  ASSERT_EQ(chain.files()[1].kind, CheckpointKind::kIncrementalCorrecting);
  const Bytes wire = chain.files()[1].serialize();
  ASSERT_EQ(wire[7], std::uint8_t('3'));

  Bytes to_v2 = wire;
  to_v2[7] = std::uint8_t('2');
  EXPECT_THROW((void)CheckpointFile::parse(to_v2), CheckError);

  Bytes to_v7 = wire;
  to_v7[7] = std::uint8_t('7');
  EXPECT_THROW((void)CheckpointFile::parse(to_v7), UnsupportedFormatError);
}

TEST(CheckpointV3, InPlaceRestoreMatchesOutOfPlaceAcrossChainLife) {
  Rng rng(0x35);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  for (mem::PageId id = 0; id < 16; ++id) randomize_page(space, id, rng);
  CheckpointChain::Config cfg;
  cfg.correcting = true;
  CheckpointChain chain(cfg);
  for (int interval = 0; interval < 8; ++interval) {
    if (interval > 0) evolve(space, rng, 20);
    chain.capture(space, {}, double(interval));
    auto in_place = chain.restore(RestartEngine::Mode::kInPlace);
    auto out_of_place = chain.restore(RestartEngine::Mode::kOutOfPlace);
    ASSERT_TRUE(in_place.memory.equals_space(space))
        << "in-place diverged at interval " << interval;
    ASSERT_TRUE(out_of_place.memory.equals_space(space));
    // Byte-exact across modes, page by page.
    const auto ids = in_place.memory.page_ids();
    ASSERT_EQ(ids, out_of_place.memory.page_ids());
    for (mem::PageId id : ids)
      ASSERT_EQ(0, std::memcmp(in_place.memory.page_bytes(id).data(),
                               out_of_place.memory.page_bytes(id).data(),
                               kPageSize))
          << "page " << id << " interval " << interval;
  }
}

TEST(CheckpointV3, GreedyChainInPlaceRestoreAlsoMatches) {
  // Mode is orthogonal to the coder: greedy (v2) chains restore in place
  // too, since kIncrementalDelta payloads replay through the same
  // dispatcher.
  Rng rng(0x36);
  mem::AddressSpace space;
  space.allocate_range(0, 12);
  for (mem::PageId id = 0; id < 12; ++id) randomize_page(space, id, rng);
  CheckpointChain chain;  // defaults: greedy delta
  for (int interval = 0; interval < 6; ++interval) {
    if (interval > 0) evolve(space, rng, 16);
    chain.capture(space, {}, double(interval));
    ASSERT_TRUE(chain.restore(RestartEngine::Mode::kInPlace)
                    .memory.equals_space(space));
    ASSERT_TRUE(chain.restore(RestartEngine::Mode::kOutOfPlace)
                    .memory.equals_space(space));
  }
}

TEST(CheckpointV3, InPlaceRestorePeakHeapAtMostHalfOfOutOfPlace) {
  // The memory claim behind in-place reconstruction (ISSUE 6 acceptance):
  // restoring a checkpoint whose incrementals touch every page must not
  // materialize a second image. Out-of-place decodes the dirty set into a
  // scratch snapshot before overlaying (peak ~= 2 images); in-place
  // rebuilds inside the accumulated state (peak ~= 1 image + one page).
  //
  // The chain is built so incrementals dominate: a tiny full (4 pages),
  // then an incremental that allocates and fills 60 more, then one that
  // edits all 64 — so the biggest single decode equals the whole image.
  Rng rng(0x37);
  mem::AddressSpace space;
  space.allocate_range(0, 4);
  for (mem::PageId id = 0; id < 4; ++id) randomize_page(space, id, rng);
  CheckpointChain::Config cfg;
  cfg.correcting = true;
  CheckpointChain chain(cfg);
  chain.capture(space, {}, 0.0);

  space.protect_all();
  space.allocate_range(4, 64);
  for (mem::PageId id = 4; id < 64; ++id) randomize_page(space, id, rng);
  chain.capture(space, {}, 1.0);

  space.protect_all();
  for (mem::PageId id = 0; id < 64; ++id) small_edit(space, id, rng);
  chain.capture(space, {}, 2.0);

  // Restore through RestartEngine directly: CheckpointChain::restore would
  // work, but the point is to measure the engine, not the chain wrapper.
  const std::vector<CheckpointFile>& files = chain.files();
  const delta::PageAlignedCompressor pa({}, /*correcting=*/true);

  aic::testing::reset_heap_peak();
  std::uint64_t live0 = aic::testing::heap_stats().live_bytes;
  auto out_of_place =
      RestartEngine::restore(files, pa, RestartEngine::Mode::kOutOfPlace);
  const std::uint64_t peak_out =
      aic::testing::heap_stats().peak_bytes - live0;

  aic::testing::reset_heap_peak();
  live0 = aic::testing::heap_stats().live_bytes;
  auto in_place =
      RestartEngine::restore(files, pa, RestartEngine::Mode::kInPlace);
  const std::uint64_t peak_in = aic::testing::heap_stats().peak_bytes - live0;

  // Same bytes out of both paths, and both match the live space.
  ASSERT_TRUE(in_place.memory.equals_space(space));
  ASSERT_TRUE(out_of_place.memory.equals_space(space));

  // Each restore must at least hold one image (64 pages), and the
  // in-place peak must be at most 55% of the out-of-place peak.
  EXPECT_GE(peak_out, 64u * kPageSize);
  EXPECT_GE(peak_in, 64u * kPageSize);
  EXPECT_LE(peak_in * 100, peak_out * 55)
      << "in-place peak " << peak_in << " vs out-of-place " << peak_out;
}

}  // namespace
}  // namespace aic::ckpt
