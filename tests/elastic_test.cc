// Elastic (malleable) jobs: resizes migrate footprint and shift the
// dirty-page statistics, the restart property survives reconfigurations,
// and the failure simulator re-derives costs/exposure and re-plans the
// work span at every resize — recovering byte-exact throughout.
#include <gtest/gtest.h>

#include <cmath>

#include "failure/failure.h"
#include "mem/snapshot.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "sim/failure_sim.h"
#include "workload/elastic.h"

namespace aic::workload {
namespace {

ElasticProfile bzip2_profile(std::vector<ResizeEvent> resizes) {
  ElasticProfile ep;
  ep.base = spec_profile(SpecBenchmark::kBzip2, 0.125);
  ep.base_cores = 4;
  ep.resizes = std::move(resizes);
  return ep;
}

/// Dirty pages produced by `window` seconds of stepping from the current
/// position (leaves the tracker re-armed).
std::uint64_t dirty_in_window(Workload& wl, mem::AddressSpace& space,
                              double window) {
  space.protect_all();
  wl.step(space, window);
  return space.dirty_page_count();
}

TEST(ElasticWorkload, GrowMigratesFootprintAndShiftsDirtyStats) {
  ElasticWorkload wl(bzip2_profile({{40.0, 8}}));
  mem::AddressSpace space;
  wl.initialize(space);
  const std::uint64_t fp0 = wl.footprint_pages();

  wl.step(space, 30.0);  // well before the resize
  const std::uint64_t dirty_before = dirty_in_window(wl, space, 8.0);
  ASSERT_EQ(wl.applied_resizes(), 0u);

  // The next window straddles the resize: footprint doubles, rates double,
  // and the migration burst rewrites a slice of the new footprint.
  const std::uint64_t dirty_across = dirty_in_window(wl, space, 8.0);
  ASSERT_EQ(wl.applied_resizes(), 1u);
  EXPECT_EQ(wl.cores(), 8u);
  EXPECT_DOUBLE_EQ(wl.scale_factor(), 2.0);
  EXPECT_EQ(wl.footprint_pages(), 2 * fp0);

  const auto& mig = wl.last_migration();
  ASSERT_TRUE(mig.has_value());
  EXPECT_EQ(mig->cores_before, 4u);
  EXPECT_EQ(mig->cores_after, 8u);
  EXPECT_GT(mig->pages_allocated, 0u);
  EXPECT_GT(mig->pages_rewritten, 0u);
  EXPECT_EQ(mig->pages_freed, 0u);

  // The predictor-visible signal: measurably more dirty pages per window.
  EXPECT_GT(dirty_across, dirty_before + dirty_before / 2)
      << "resize did not shift the dirty-page statistics";
}

TEST(ElasticWorkload, ShrinkFreesTheFootprintTail) {
  ElasticWorkload wl(bzip2_profile({{40.0, 1}}));
  mem::AddressSpace space;
  wl.initialize(space);
  const std::uint64_t fp0 = wl.footprint_pages();

  wl.step(space, 45.0);
  ASSERT_EQ(wl.applied_resizes(), 1u);
  EXPECT_EQ(wl.cores(), 1u);
  EXPECT_EQ(wl.footprint_pages(), fp0 / 4);

  const auto& mig = wl.last_migration();
  ASSERT_TRUE(mig.has_value());
  EXPECT_GT(mig->pages_freed, 0u);
  // Everything beyond the packed footprint's heap region is gone.
  for (mem::PageId id : space.live_pages()) {
    EXPECT_LT(id, 2 * wl.footprint_pages());
  }
}

TEST(ElasticWorkload, RestoreBeforeResizeReplaysByteIdentically) {
  const ElasticProfile ep = bzip2_profile({{40.0, 8}, {90.0, 2}});

  // Straight-through reference.
  ElasticWorkload ref(ep);
  mem::AddressSpace ref_space;
  ref.initialize(ref_space);
  ref.step(ref_space, ref.base_time());
  const mem::Snapshot final_ref = mem::Snapshot::capture(ref_space);

  // Checkpoint before the first resize, restore into a fresh instance, and
  // replay across both resizes.
  ElasticWorkload a(ep);
  mem::AddressSpace sa;
  a.initialize(sa);
  a.step(sa, 33.0);
  ASSERT_EQ(a.applied_resizes(), 0u);
  const Bytes cpu = a.cpu_state();
  const mem::Snapshot snap = mem::Snapshot::capture(sa);

  ElasticWorkload b(ep);
  mem::AddressSpace sb = snap.materialize();
  b.restore_cpu_state(cpu);
  EXPECT_EQ(b.applied_resizes(), 0u);
  EXPECT_DOUBLE_EQ(b.progress(), 33.0);
  b.step(sb, b.base_time());
  EXPECT_EQ(b.applied_resizes(), 2u);
  EXPECT_TRUE(final_ref.equals_space(sb));
}

TEST(ElasticWorkload, RestoreBetweenResizesRederivesTheSegment) {
  const ElasticProfile ep = bzip2_profile({{40.0, 8}, {90.0, 2}});

  ElasticWorkload ref(ep);
  mem::AddressSpace ref_space;
  ref.initialize(ref_space);
  ref.step(ref_space, ref.base_time());
  const mem::Snapshot final_ref = mem::Snapshot::capture(ref_space);

  ElasticWorkload a(ep);
  mem::AddressSpace sa;
  a.initialize(sa);
  a.step(sa, 61.0);  // between the two resizes
  ASSERT_EQ(a.applied_resizes(), 1u);
  const Bytes cpu = a.cpu_state();
  const mem::Snapshot snap = mem::Snapshot::capture(sa);

  ElasticWorkload b(ep);
  mem::AddressSpace sb = snap.materialize();
  b.restore_cpu_state(cpu);
  EXPECT_EQ(b.applied_resizes(), 1u);
  EXPECT_EQ(b.cores(), 8u);
  b.step(sb, b.base_time());
  EXPECT_TRUE(final_ref.equals_space(sb));
}

}  // namespace
}  // namespace aic::workload

namespace aic::sim {
namespace {

FailureSimConfig elastic_sim_config(std::uint64_t seed) {
  FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures = failure::FailureSpec::from_total(0.02);
  cfg.checkpoint_interval = 10.0;
  cfg.seed = seed;
  cfg.resizes = {{40.0, 8}, {90.0, 2}};
  cfg.base_cores = 4;
  return cfg;
}

class ElasticSimFixture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElasticSimFixture, RecoversByteExactAcrossResizes) {
  FailureSimConfig cfg = elastic_sim_config(GetParam());
  FailureSimResult res = run_failure_sim(cfg);
  EXPECT_TRUE(res.final_state_verified)
      << "memory diverged after " << res.restores << " restores across "
      << res.resizes_applied << " resizes";
  EXPECT_GE(res.resizes_applied, 2);
  EXPECT_GE(res.replans, res.resizes_applied)
      << "every reconfiguration must re-plan w_L*";
  EXPECT_GT(res.turnaround, res.base_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElasticSimFixture,
                         ::testing::Values(7, 21, 42));

TEST(ElasticSim, ReplanMovesTheWorkSpan) {
  FailureSimConfig cfg = elastic_sim_config(5);
  FailureSimResult on = run_failure_sim(cfg);
  cfg.replan_on_resize = false;
  FailureSimResult off = run_failure_sim(cfg);

  EXPECT_TRUE(on.final_state_verified);
  EXPECT_TRUE(off.final_state_verified);
  EXPECT_GT(on.replans, 0);
  EXPECT_EQ(off.replans, 0);
  EXPECT_NE(on.final_checkpoint_interval, cfg.checkpoint_interval)
      << "the re-plan never moved the interval off its static value";
  EXPECT_DOUBLE_EQ(off.final_checkpoint_interval, cfg.checkpoint_interval);
}

TEST(ElasticSim, TimelineIsDeterministic) {
  const FailureSimConfig cfg = elastic_sim_config(13);
  FailureSimResult a = run_failure_sim(cfg);
  FailureSimResult b = run_failure_sim(cfg);
  EXPECT_DOUBLE_EQ(a.turnaround, b.turnaround);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.resizes_applied, b.resizes_applied);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_DOUBLE_EQ(a.final_checkpoint_interval, b.final_checkpoint_interval);
}

TEST(ElasticSim, EmitsResizeAndReplanTelemetry) {
  obs::Hub hub;
  FailureSimConfig cfg = elastic_sim_config(3);
  cfg.failures = failure::FailureSpec{};  // clean run: exactly 2 resizes
  cfg.obs = &hub;
  FailureSimResult res = run_failure_sim(cfg);
  ASSERT_TRUE(res.final_state_verified);
  EXPECT_EQ(hub.metrics.counter(obs::names::kSimResizes)->value(),
            std::uint64_t(res.resizes_applied));
  EXPECT_EQ(hub.metrics.counter(obs::names::kSimReplans)->value(),
            std::uint64_t(res.replans));
  EXPECT_EQ(res.resizes_applied, 2);
}

TEST(ElasticSim, RewindBudgetPrunesAndStillRecovers) {
  FailureSimConfig cfg = elastic_sim_config(9);
  cfg.rewind_budget = 4;
  FailureSimResult res = run_failure_sim(cfg);
  EXPECT_TRUE(res.final_state_verified);
  EXPECT_GT(res.checkpoints_pruned, 0)
      << "a " << res.checkpoints << "-checkpoint run must overflow budget 4";
}

TEST(ElasticSim, RewindBudgetWorksUnderTheTransferEngine) {
  FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures = failure::FailureSpec::from_total(0.02);
  cfg.checkpoint_interval = 10.0;
  cfg.seed = 17;
  cfg.use_transfer_engine = true;
  cfg.rewind_budget = 4;
  FailureSimResult res = run_failure_sim(cfg);
  EXPECT_TRUE(res.final_state_verified);
  EXPECT_GT(res.checkpoints_pruned, 0);
}

TEST(ElasticSim, ResizesRejectTheTransferEngineVariant) {
  FailureSimConfig cfg = elastic_sim_config(1);
  cfg.use_transfer_engine = true;
  EXPECT_THROW((void)run_failure_sim(cfg), CheckError);
}

}  // namespace
}  // namespace aic::sim
