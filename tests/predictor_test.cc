// Tests for predictor/: JD/DI metric identities, hot-page sampling with
// adaptive T_g, feature expansion, stepwise selection of planted models,
// online GD tracking, and the end-to-end AicPredictor protocol.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "mem/address_space.h"
#include "predictor/hot_page_sampler.h"
#include "predictor/metrics.h"
#include "predictor/predictor.h"

namespace aic::predictor {
namespace {

TEST(Metrics, JaccardIdenticalIsZero) {
  Bytes a(256, 7);
  EXPECT_DOUBLE_EQ(jaccard_distance(a, a), 0.0);
}

TEST(Metrics, JaccardDisjointIsOne) {
  Bytes a(256, 1), b(256, 2);
  EXPECT_DOUBLE_EQ(jaccard_distance(a, b), 1.0);
}

TEST(Metrics, JaccardFractional) {
  Bytes a(100, 0), b(100, 0);
  for (int i = 0; i < 25; ++i) b[i] = 1;
  EXPECT_DOUBLE_EQ(jaccard_distance(a, b), 0.25);
  EXPECT_DOUBLE_EQ(jaccard_distance(b, a), 0.25);  // symmetric
}

TEST(Metrics, JaccardSizeMismatchThrows) {
  Bytes a(10), b(11);
  EXPECT_THROW((void)jaccard_distance(a, b), CheckError);
}

TEST(Metrics, DivergenceUniformPageIsZero) {
  Bytes a(512, 42);
  EXPECT_DOUBLE_EQ(divergence_index(a), 0.0);
}

TEST(Metrics, DivergenceAllDistinctNearOne) {
  Bytes a(256);
  for (int i = 0; i < 256; ++i) a[i] = std::uint8_t(i);
  EXPECT_DOUBLE_EQ(divergence_index(a), 1.0 - 1.0 / 256.0);
}

TEST(Metrics, BothBoundedZeroOne) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes a(kPageSize), b(kPageSize);
    for (auto& x : a) x = std::uint8_t(rng());
    for (auto& x : b) x = std::uint8_t(rng());
    const double jd = jaccard_distance(a, b);
    const double di = divergence_index(a);
    EXPECT_GE(jd, 0.0);
    EXPECT_LE(jd, 1.0);
    EXPECT_GE(di, 0.0);
    EXPECT_LE(di, 1.0);
  }
}

// ---- hot page sampler ----

class SamplerFixture : public ::testing::Test {
 protected:
  SamplerFixture() {
    space_.allocate_range(0, 64);
    Rng rng(2);
    for (mem::PageId id = 0; id < 64; ++id) {
      space_.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    space_.protect_all();
  }

  /// Wires the sampler like a controller would, with `now` under test
  /// control.
  void wire(HotPageSampler& sampler) {
    space_.set_fault_observer([this, &sampler](mem::PageId id) {
      sampler.on_fault(id, now_, space_.page_bytes(id));
    });
  }

  void touch(mem::PageId id) {
    Bytes d = {0xFF, 0xEE};
    space_.write(id, 8, d);
  }

  mem::AddressSpace space_;
  double now_ = 0.0;
};

TEST_F(SamplerFixture, BuffersFirstPageOfEachGroup) {
  HotPageSampler sampler({.buffer_bytes = 64 * kPageSize, .initial_tg = 1.0});
  wire(sampler);
  // Three pages within one T_g window: one group, one sample.
  now_ = 0.0;
  touch(0);
  now_ = 0.4;
  touch(1);
  now_ = 0.8;
  touch(2);
  // A fourth page beyond T_g: a new group.
  now_ = 2.5;
  touch(3);
  auto st = sampler.stats();
  EXPECT_EQ(st.samples, 2u);
  EXPECT_EQ(st.groups, 2u);
  EXPECT_EQ(st.faults_seen, 4u);
}

TEST_F(SamplerFixture, SecondWriteSamePageNoFault) {
  HotPageSampler sampler({.buffer_bytes = 64 * kPageSize, .initial_tg = 0.1});
  wire(sampler);
  touch(5);
  now_ = 10.0;
  touch(5);  // same page: already unprotected, no fault
  EXPECT_EQ(sampler.stats().faults_seen, 1u);
}

TEST_F(SamplerFixture, JdReflectsPostBufferMutation) {
  HotPageSampler sampler({.buffer_bytes = 64 * kPageSize, .initial_tg = 0.1});
  wire(sampler);
  touch(7);  // buffers pre-write content of page 7
  // Rewrite half the page afterwards.
  Bytes half(kPageSize / 2, 0xAB);
  space_.write(7, 0, half);
  auto m = sampler.compute(space_);
  ASSERT_TRUE(m.ok);
  // Roughly half the bytes differ from the pre-write copy (the two small
  // earlier writes overlap the rewritten half).
  EXPECT_NEAR(m.mean_jd, 0.5, 0.05);
  EXPECT_GT(m.mean_di, 0.3);  // random-ish content is internally diverse
}

TEST_F(SamplerFixture, OverflowDoublesTgAndEvicts) {
  // Capacity of 4 pages; 6 groups arrive.
  HotPageSampler sampler({.buffer_bytes = 4 * kPageSize, .initial_tg = 0.1});
  wire(sampler);
  for (int g = 0; g < 6; ++g) {
    now_ = double(g);
    touch(mem::PageId(g));
  }
  auto st = sampler.stats();
  EXPECT_GT(st.tg, 0.1);  // doubled at least once
  EXPECT_LE(st.samples, 4u);
  EXPECT_EQ(st.faults_seen, 6u);
}

TEST_F(SamplerFixture, AdaptHalvesTgWhenSparse) {
  HotPageSampler sampler({.buffer_bytes = 64 * kPageSize, .initial_tg = 1.0});
  wire(sampler);
  touch(0);  // 1 sample << capacity/2
  sampler.adapt();
  EXPECT_NEAR(sampler.stats().tg, 0.5, 1e-12);
}

TEST_F(SamplerFixture, ResetClearsState) {
  HotPageSampler sampler({.buffer_bytes = 64 * kPageSize, .initial_tg = 1.0});
  wire(sampler);
  touch(0);
  sampler.reset_interval();
  auto st = sampler.stats();
  EXPECT_EQ(st.samples, 0u);
  EXPECT_EQ(st.faults_seen, 0u);
  EXPECT_FALSE(sampler.compute(space_).ok);
}

TEST_F(SamplerFixture, FreedPageSkippedInCompute) {
  HotPageSampler sampler({.buffer_bytes = 64 * kPageSize, .initial_tg = 0.1});
  wire(sampler);
  touch(9);
  space_.free_page(9);
  EXPECT_FALSE(sampler.compute(space_).ok);
}

// ---- features ----

TEST(Features, ExpansionValuesAndOrder) {
  BaseMetrics m{2.0, 3.0, 0.5, 0.25};
  auto x = expand_features(m);
  EXPECT_DOUBLE_EQ(x[0], 2.0);    // DP
  EXPECT_DOUBLE_EQ(x[1], 3.0);    // t
  EXPECT_DOUBLE_EQ(x[2], 0.5);    // JD
  EXPECT_DOUBLE_EQ(x[3], 0.25);   // DI
  EXPECT_DOUBLE_EQ(x[4], 4.0);    // DP^2
  EXPECT_DOUBLE_EQ(x[5], 9.0);    // t^2
  EXPECT_DOUBLE_EQ(x[8], 6.0);    // DP*t
  EXPECT_DOUBLE_EQ(x[13], 0.125); // JD*DI
  EXPECT_EQ(feature_names().size(), kCandidateCount);
  EXPECT_EQ(feature_names()[8], "DP*t");
}

// ---- stepwise + online GD ----

std::vector<double> to_vec(const std::array<double, kCandidateCount>& a) {
  return {a.begin(), a.end()};
}

TEST(Stepwise, RecoversPlantedSparseModel) {
  Rng rng(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 60; ++i) {
    BaseMetrics m{rng.uniform(0, 100), rng.uniform(0, 10), rng.uniform(),
                  rng.uniform()};
    auto x = expand_features(m);
    // y = 5 + 2*DP + 30*JD (+ small noise)
    ys.push_back(5.0 + 2.0 * x[0] + 30.0 * x[2] + 0.01 * rng.normal());
    xs.push_back(to_vec(x));
  }
  LinearModel fit = stepwise_fit(xs, ys);
  ASSERT_LE(fit.selected.size(), 3u);
  // DP and JD must be among the selected features.
  auto has = [&](std::size_t idx) {
    return std::find(fit.selected.begin(), fit.selected.end(), idx) !=
           fit.selected.end();
  };
  EXPECT_TRUE(has(0)) << "DP not selected";
  EXPECT_TRUE(has(2)) << "JD not selected";
  // Prediction quality on a fresh point.
  BaseMetrics probe{50.0, 5.0, 0.5, 0.5};
  const double truth = 5.0 + 2.0 * 50.0 + 30.0 * 0.5;
  EXPECT_NEAR(fit.predict(to_vec(expand_features(probe))), truth,
              0.02 * truth);
}

TEST(Stepwise, StopsWhenNoImprovement) {
  // Pure-noise target: nothing should clear the improvement threshold by
  // a large margin; at most a couple of spurious terms get in.
  Rng rng(4);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    BaseMetrics m{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    xs.push_back(to_vec(expand_features(m)));
    ys.push_back(100.0 + 0.001 * rng.normal());
  }
  LinearModel fit = stepwise_fit(xs, ys, {.max_terms = 3,
                                          .min_improvement = 0.2});
  EXPECT_LE(fit.selected.size(), 1u);
  EXPECT_NEAR(fit.intercept, 100.0, 0.5);
}

TEST(Stepwise, TooFewSamplesThrows) {
  std::vector<std::vector<double>> xs(3, std::vector<double>(14, 1.0));
  std::vector<double> ys(3, 1.0);
  EXPECT_THROW((void)stepwise_fit(xs, ys), CheckError);
}

TEST(OnlineGd, ConvergesToStaticTarget) {
  LinearModel m;
  m.selected = {0};
  m.weights = {0.0};
  m.intercept = 0.0;
  OnlineGd gd(m, 0.5);
  Rng rng(5);
  // y = 3 + 4*x0
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> x(14, 0.0);
    x[0] = rng.uniform(0, 2);
    gd.update(x, 3.0 + 4.0 * x[0]);
  }
  std::vector<double> probe(14, 0.0);
  probe[0] = 1.5;
  EXPECT_NEAR(gd.predict(probe), 3.0 + 4.0 * 1.5, 0.1);
}

TEST(OnlineGd, TracksDriftingTarget) {
  LinearModel m;
  m.selected = {0};
  m.weights = {4.0};
  m.intercept = 3.0;
  OnlineGd gd(m, 0.5);
  Rng rng(6);
  // The true slope drifts from 4 to 8; the learner must follow.
  for (int i = 0; i < 4000; ++i) {
    const double slope = 4.0 + 4.0 * double(i) / 4000.0;
    std::vector<double> x(14, 0.0);
    x[0] = rng.uniform(0, 2);
    gd.update(x, 3.0 + slope * x[0]);
  }
  std::vector<double> probe(14, 0.0);
  probe[0] = 1.0;
  EXPECT_NEAR(gd.predict(probe), 3.0 + 8.0, 0.5);
}

// ---- AicPredictor service ----

TEST(AicPredictor, WarmupUsesRunningMean) {
  AicPredictor p;
  BaseMetrics m{10, 1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(p.predict(Target::kC1, m), 0.0);
  p.observe(m, 2.0, 8.0, 1000.0);
  EXPECT_FALSE(p.warmed_up());
  EXPECT_DOUBLE_EQ(p.predict(Target::kC1, m), 2.0);
  EXPECT_DOUBLE_EQ(p.predict(Target::kDeltaLatency, m), 8.0);
  p.observe(m, 4.0, 8.0, 3000.0);
  EXPECT_DOUBLE_EQ(p.predict(Target::kC1, m), 3.0);
  EXPECT_DOUBLE_EQ(p.predict(Target::kDeltaSize, m), 2000.0);
}

TEST(AicPredictor, WarmsUpAfterFourObservations) {
  AicPredictor p;
  Rng rng(7);
  for (int i = 0; i < 4; ++i) {
    BaseMetrics m{rng.uniform(0, 100), rng.uniform(0, 10), rng.uniform(),
                  rng.uniform()};
    p.observe(m, 1.0 + m.dirty_pages, 2.0 * m.jd, 100.0 * m.dirty_pages);
  }
  EXPECT_TRUE(p.warmed_up());
  EXPECT_EQ(p.observations(), 4u);
}

TEST(AicPredictor, LearnsDirtyPageDrivenTargets) {
  AicPredictor p;
  Rng rng(8);
  // c1 = 0.001*DP, dl = 0.01*DP*JD, ds = 400*DP*JD — the page-aligned
  // cost structure AIC exploits.
  for (int i = 0; i < 300; ++i) {
    BaseMetrics m{rng.uniform(100, 2000), rng.uniform(0.5, 10),
                  rng.uniform(), rng.uniform()};
    p.observe(m, 0.001 * m.dirty_pages, 0.01 * m.dirty_pages * m.jd,
              400.0 * m.dirty_pages * m.jd);
  }
  BaseMetrics probe{1000, 5, 0.5, 0.5};
  EXPECT_NEAR(p.predict(Target::kC1, probe), 1.0, 0.1);
  EXPECT_NEAR(p.predict(Target::kDeltaLatency, probe), 5.0, 1.0);
  EXPECT_NEAR(p.predict(Target::kDeltaSize, probe), 200000.0, 30000.0);
}

TEST(AicPredictor, PredictionsNeverNegative) {
  AicPredictor p;
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    BaseMetrics m{rng.uniform(0, 10), rng.uniform(0, 1), rng.uniform(),
                  rng.uniform()};
    p.observe(m, 0.01, 0.01, 10.0);
  }
  BaseMetrics wild{1e6, 1e4, 1.0, 1.0};
  for (auto t : {Target::kC1, Target::kDeltaLatency, Target::kDeltaSize}) {
    EXPECT_GE(p.predict(t, wild), 0.0);
  }
}

}  // namespace
}  // namespace aic::predictor
