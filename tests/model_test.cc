// Tests for model/: exponential-failure identities, the generic Markov
// solver against closed-form cases, the concurrent interval models, the
// Moody baseline, and the optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "model/exp_math.h"
#include "model/interval_models.h"
#include "model/markov_chain.h"
#include "model/moody.h"
#include "model/optimizer.h"
#include "model/system_profile.h"

namespace aic::model {
namespace {

TEST(ExpMath, NoFailureProbability) {
  EXPECT_DOUBLE_EQ(p_no_failure(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(p_no_failure(0.1, 0.0), 1.0);
  EXPECT_NEAR(p_no_failure(0.01, 100.0), std::exp(-1.0), 1e-12);
}

TEST(ExpMath, ConditionalFailureTimeLimits) {
  // Small lambda*tau: tends to tau/2 (failure uniform over the interval).
  EXPECT_NEAR(expected_failure_time(1e-9, 100.0), 50.0, 1e-3);
  // Large lambda*tau: tends to 1/lambda (failure early).
  EXPECT_NEAR(expected_failure_time(10.0, 1000.0), 0.1, 1e-6);
  EXPECT_DOUBLE_EQ(expected_failure_time(1.0, 0.0), 0.0);
}

TEST(ExpMath, ConditionalFailureTimeSeriesMatchesExactForm) {
  // The series fallback must agree with the exact expm1 expression where
  // both are numerically trustworthy (just below the branch threshold).
  const double tau = 1.0;
  for (double lambda : {1e-7, 5e-7, 0.99e-6}) {
    const double exact = 1.0 / lambda - tau / std::expm1(lambda * tau);
    // The exact form itself suffers ~1/lambda * eps cancellation here —
    // precisely why the implementation branches; compare loosely.
    EXPECT_NEAR(expected_failure_time(lambda, tau), exact, 1e-7);
  }
}

TEST(ExpMath, ConditionalFailureTimeBelowTau) {
  for (double lt : {0.01, 0.1, 1.0, 5.0}) {
    const double tau = 7.0;
    const double t = expected_failure_time(lt / tau, tau);
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, tau / 2.0 + 1e-9);
  }
}

// Closed form for the simplest checkpoint chain: one state of duration tau,
// failure (single level) leads to a recovery state of duration rho, then
// retry. Known result:
//   E = (e^(lambda*(tau)) - 1) * (1/lambda + rho_effective)... — rather than
// quote a formula, validate against direct fixed-point iteration.
TEST(MarkovChain, MatchesFixedPointIteration) {
  const double lambda = 0.02, tau = 10.0, rho = 3.0;
  MarkovChain m({lambda});
  auto work = m.add_state(tau, "work");
  auto rec = m.add_state(rho, "rec");
  m.set_success(work, MarkovChain::kDone);
  m.set_failure(work, 1, rec);
  m.set_success(rec, work);
  m.set_failure(rec, 1, rec);
  const double solved = m.expected_time(work);

  // Fixed point: E_w = ps*tau + pf*(tf + E_r + E_w'),
  //              E_r = ps_r*rho + pf_r*(tf_r + E_r)  ... iterate.
  double ew = 0, er = 0;
  const double ps = p_no_failure(lambda, tau);
  const double tf = expected_failure_time(lambda, tau);
  const double psr = p_no_failure(lambda, rho);
  const double tfr = expected_failure_time(lambda, rho);
  for (int it = 0; it < 10000; ++it) {
    er = psr * rho + (1 - psr) * (tfr + er);
    ew = ps * tau + (1 - ps) * (tf + er + ew);
  }
  EXPECT_NEAR(solved, ew, 1e-6 * ew);
}

TEST(MarkovChain, ZeroFailureRateGivesPlainSum) {
  MarkovChain m({0.0, 0.0, 0.0});
  auto a = m.add_state(5.0);
  auto b = m.add_state(7.0);
  m.set_success(a, b);
  m.set_success(b, MarkovChain::kDone);
  // Failure edges may stay unset when the rate is zero.
  EXPECT_DOUBLE_EQ(m.expected_time(a), 12.0);
}

TEST(MarkovChain, MissingEdgeThrows) {
  MarkovChain m({0.1});
  auto a = m.add_state(1.0);
  m.set_success(a, MarkovChain::kDone);
  EXPECT_THROW((void)m.expected_time(a), CheckError);
}

TEST(MarkovChain, NonAbsorbingThrows) {
  MarkovChain m({0.0});
  auto a = m.add_state(1.0);
  auto b = m.add_state(1.0);
  m.set_success(a, b);
  m.set_success(b, a);  // loops forever
  EXPECT_THROW((void)m.expected_time(a), CheckError);
}

TEST(MarkovChain, ExpectedVisitsGeometric) {
  // One state retried on failure: visits = 1/p_success.
  const double lambda = 0.05, tau = 10.0;
  MarkovChain m({lambda});
  auto w = m.add_state(tau);
  m.set_success(w, MarkovChain::kDone);
  m.set_failure(w, 1, w);
  auto visits = m.expected_visits(w);
  EXPECT_NEAR(visits[0], 1.0 / p_no_failure(lambda, tau), 1e-9);
}

TEST(MarkovChain, HigherRateMeansLongerTime) {
  auto chain_time = [](double lambda) {
    MarkovChain m({lambda});
    auto w = m.add_state(100.0);
    auto r = m.add_state(5.0);
    m.set_success(w, MarkovChain::kDone);
    m.set_failure(w, 1, r);
    m.set_success(r, w);
    m.set_failure(r, 1, r);
    return m.expected_time(w);
  };
  EXPECT_LT(chain_time(1e-6), chain_time(1e-4));
  EXPECT_LT(chain_time(1e-4), chain_time(1e-2));
}

// ---- system profile ----

TEST(SystemProfile, CoastalValues) {
  auto p = SystemProfile::coastal();
  EXPECT_DOUBLE_EQ(p.lambda[1], 1.8e-6);
  EXPECT_DOUBLE_EQ(p.c[2], 1052.0);
  EXPECT_DOUBLE_EQ(p.r[0], p.c[0]);
  EXPECT_NEAR(p.total_lambda(), 2.4e-6, 1e-12);
}

TEST(SystemProfile, MpiScaling) {
  auto p = SystemProfile::coastal().scaled_mpi(4.0);
  EXPECT_NEAR(p.lambda[1], 7.2e-6, 1e-15);
  EXPECT_DOUBLE_EQ(p.c[2], 4208.0);
  EXPECT_DOUBLE_EQ(p.c[0], 0.5);  // c1 unchanged
  EXPECT_DOUBLE_EQ(p.c[1], 4.5);  // c2 unchanged
}

TEST(SystemProfile, RmsScalingKeepsRates) {
  auto p = SystemProfile::coastal().scaled_rms(4.0);
  EXPECT_DOUBLE_EQ(p.lambda[1], 1.8e-6);
  EXPECT_DOUBLE_EQ(p.c[2], 4208.0);
}

TEST(SystemProfile, RateSharesSumToOne) {
  auto s = coastal_rate_shares();
  EXPECT_NEAR(s[0] + s[1] + s[2], 1.0, 1e-12);
  auto split = split_rate(1e-3);
  EXPECT_NEAR(split[0] + split[1] + split[2], 1e-3, 1e-15);
  EXPECT_NEAR(split[1] / 1e-3, 0.75, 1e-12);
}

// ---- concurrent interval models ----

TEST(IntervalModels, FailureFreeLimitIsNearOne) {
  // With lambda -> 0, concurrent checkpointing hides the remote transfer:
  // NET^2 -> (w + c3) / (w + c3 - c1) which is ~1 for small c1.
  auto sys = SystemProfile::coastal();
  sys.lambda = {0.0, 0.0, 0.0};
  // w must cover the concurrent transfer (c3 - c1 ~ 1051.5 s) to be
  // feasible under the paper's pipelining constraint.
  const double w = 2000.0;
  for (auto combo :
       {LevelCombo::kL1L3, LevelCombo::kL2L3, LevelCombo::kL1L2L3}) {
    const double n = net2_static(combo, sys, w);
    const double expected = (w + sys.c[2]) / (w + sys.c[2] - sys.c[0]);
    EXPECT_NEAR(n, expected, 1e-9) << to_string(combo);
    EXPECT_LT(n, 1.001);
  }
}

TEST(IntervalModels, Net2AboveOneWithFailures) {
  auto sys = SystemProfile::coastal();
  for (auto combo :
       {LevelCombo::kL1L3, LevelCombo::kL2L3, LevelCombo::kL1L2L3}) {
    EXPECT_GT(net2_static(combo, sys, 2000.0), 1.0) << to_string(combo);
  }
}

TEST(IntervalModels, MonotoneInFailureRate) {
  auto base = SystemProfile::coastal();
  double prev = 0.0;
  for (double mult : {1.0, 5.0, 25.0, 125.0}) {
    auto sys = base;
    for (auto& l : sys.lambda) l *= mult;
    const double n = net2_static(LevelCombo::kL2L3, sys, 3000.0);
    EXPECT_GT(n, prev);
    prev = n;
  }
}

TEST(IntervalModels, L2L3CloseToL1L2L3AndBetterThanL1L3AtScale) {
  // Section III.D: L2L3 and L1L2L3 nearly coincide; L1L3 suffers because
  // frequent f2 failures must recover from expensive L3 checkpoints.
  auto sys = SystemProfile::coastal().scaled_mpi(10.0);
  auto best = [&](LevelCombo combo) {
    return minimize_scalar(
               [&](double w) { return net2_static(combo, sys, w); }, 10.0,
               5e5, 24, 40)
        .value;
  };
  const double l1l3 = best(LevelCombo::kL1L3);
  const double l2l3 = best(LevelCombo::kL2L3);
  const double l1l2l3 = best(LevelCombo::kL1L2L3);
  EXPECT_NEAR(l2l3, l1l2l3, 0.05 * l2l3);
  EXPECT_GT(l1l3, l2l3 * 1.2);
}

TEST(IntervalModels, SharingFactorDegradesNet2) {
  // w = 9000 stays feasible even at SF = 8 (8 * 1051.5 = 8412).
  auto sys = SystemProfile::coastal();
  const double base = net2_static(LevelCombo::kL2L3, sys, 9000.0);
  const double shared =
      net2_static(LevelCombo::kL2L3, sys.with_sharing(8.0), 9000.0);
  EXPECT_GT(shared, base);
}

TEST(IntervalModels, InfeasibleSpanHeavilyPenalized) {
  // Work spans shorter than the previous transfer would require starting
  // an L1 while the checkpointing core is still busy.
  auto sys = SystemProfile::coastal();
  EXPECT_GT(net2_static(LevelCombo::kL2L3, sys, 500.0), 1e5);
  EXPECT_LT(net2_static(LevelCombo::kL2L3, sys, 1100.0), 10.0);
}

TEST(IntervalModels, AdaptiveMatchesStaticWhenParamsEqual) {
  auto sys = SystemProfile::coastal();
  const auto p = IntervalParams::from_profile(sys);
  const double w = 2500.0;
  EXPECT_NEAR(net2_adaptive(sys, w, p, p),
              net2_static(LevelCombo::kL2L3, sys, w), 1e-12);
}

TEST(IntervalModels, AdaptivePrefersCheapCheckpoint) {
  // A cheaper current checkpoint (smaller delta) must not increase NET^2.
  auto sys = SystemProfile::coastal();
  auto cheap = IntervalParams::from_profile(sys);
  cheap.c2 = 1.0;
  cheap.c3 = 200.0;
  cheap.r2 = 1.0;
  cheap.r3 = 200.0;
  const auto normal = IntervalParams::from_profile(sys);
  const double w = 2500.0;
  EXPECT_LT(expected_interval_time_adaptive(sys, w, cheap, normal),
            expected_interval_time_adaptive(sys, w, normal, normal));
}

TEST(IntervalModels, BadParamsThrow) {
  auto sys = SystemProfile::coastal();
  sys.c = {10.0, 5.0, 1052.0};  // c2 < c1
  EXPECT_THROW((void)net2_static(LevelCombo::kL2L3, sys, 100.0), CheckError);
}

// ---- Moody baseline ----

TEST(Moody, FailureFreeNet2IsCheckpointOverhead) {
  auto sys = SystemProfile::coastal();
  sys.lambda = {0.0, 0.0, 0.0};
  // n1=0, n2=0: every segment ends with a blocking L3 checkpoint.
  const double w = 5000.0;
  EXPECT_NEAR(moody_net2(sys, w, 0, 0), (w + sys.c[2]) / w, 1e-9);
  // With hierarchy: period = 4 segments, 3x c1 + 1x c3.
  const double n = moody_net2(sys, w, 2, 0);  // wait: n1=2 -> 3 segs
  EXPECT_NEAR(n, (3 * w + 2 * sys.c[0] + sys.c[2]) / (3 * w), 1e-9);
}

TEST(Moody, BlockingWorseThanConcurrentAtSameW) {
  auto sys = SystemProfile::coastal();
  const double w = 3000.0;
  EXPECT_GT(moody_net2(sys, w, 0, 2),
            net2_static(LevelCombo::kL2L3, sys, w));
}

TEST(Moody, OptimizerFindsFiniteOptimum) {
  auto sys = SystemProfile::coastal();
  MoodyResult r = optimize_moody(sys);
  EXPECT_GT(r.net2, 1.0);
  EXPECT_LT(r.net2, 3.0);
  EXPECT_GT(r.w, 0.0);
}

TEST(Moody, HigherRatesRaiseOptimalNet2) {
  auto sys1 = SystemProfile::coastal();
  auto sys4 = sys1.scaled_mpi(4.0);
  EXPECT_GT(optimize_moody(sys4, {0, 1, 2}).net2,
            optimize_moody(sys1, {0, 1, 2}).net2);
}

// ---- optimizer primitives ----

TEST(Optimizer, MinimizeQuadratic) {
  auto f = [](double x) { return (x - 3.0) * (x - 3.0) + 1.0; };
  OptResult r = minimize_scalar(f, 0.1, 100.0);
  EXPECT_NEAR(r.x, 3.0, 1e-4);
  EXPECT_NEAR(r.value, 1.0, 1e-8);
}

TEST(Optimizer, MinimizeBoundaryMinimum) {
  auto f = [](double x) { return x; };  // minimum at lo
  OptResult r = minimize_scalar(f, 2.0, 50.0);
  EXPECT_NEAR(r.x, 2.0, 1e-6);
}

TEST(Optimizer, NewtonRaphsonFindsStationaryPoint) {
  auto f = [](double x) { return (x - 7.0) * (x - 7.0); };
  const double x = newton_raphson_stationary(f, 2.0, 0.1, 100.0);
  EXPECT_NEAR(x, 7.0, 1e-4);
}

TEST(Optimizer, ExtremeValuePicksBoundaryWhenBetter) {
  // Monotone decreasing: minimum at hi.
  auto f = [](double x) { return 100.0 / x; };
  OptResult r = extreme_value_minimum(f, 1.0, 50.0, 10.0);
  EXPECT_NEAR(r.x, 50.0, 1e-6);
}

TEST(Optimizer, ExtremeValueMatchesGlobalForDalyLikeCurve) {
  // A checkpointing-overhead-like curve: c/w + lambda*w/2 (Young's
  // tradeoff) has a unique interior optimum w* = sqrt(2c/lambda).
  const double c = 10.0, lambda = 1e-4;
  auto f = [&](double w) { return c / w + lambda * w / 2.0; };
  OptResult nr = extreme_value_minimum(f, 1.0, 1e6, 500.0);
  EXPECT_NEAR(nr.x, std::sqrt(2.0 * c / lambda), 1.0);
}

TEST(Optimizer, Net2CurveOptimizable) {
  // End-to-end: NET^2(w) for L2L3 on Coastal has an interior optimum that
  // both search styles agree on. Search inside the feasible region
  // (w >= c3 - c1) where the curve is smooth.
  auto sys = SystemProfile::coastal();
  auto f = [&](double w) { return net2_static(LevelCombo::kL2L3, sys, w); };
  OptResult grid = minimize_scalar(f, 1100.0, 1e6, 32, 60);
  OptResult evt = extreme_value_minimum(f, 1100.0, 1e6, grid.x * 2.0);
  EXPECT_NEAR(evt.value, grid.value, 0.01 * grid.value);
}

}  // namespace
}  // namespace aic::model
