// Fault-injection tests for verify/ChainVerifier (the aic_fsck engine):
// every injected corruption — bit flips at arbitrary offsets, truncations,
// duplicated / reordered / missing records, garbage payloads hiding behind
// a valid checksum, freed-page lies — must surface as a typed diagnostic,
// never as a crash and never as a silently wrong replay.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "common/rng.h"
#include "verify/chain_verifier.h"

namespace aic::verify {
namespace {

using ckpt::CheckpointChain;
using ckpt::CheckpointFile;
using ckpt::CheckpointKind;

/// Builds a realistic chain — full checkpoint, then delta incrementals with
/// edits, frees and allocations — and returns the serialized records.
std::vector<Bytes> build_chain(int checkpoints, std::uint64_t seed,
                               std::uint32_t full_period = 0,
                               bool correcting = false) {
  Rng rng(seed);
  mem::AddressSpace space;
  space.allocate_range(0, 10);
  for (mem::PageId id = 0; id < 10; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  CheckpointChain::Config cfg;
  cfg.full_period = full_period;
  cfg.correcting = correcting;
  CheckpointChain chain(cfg);
  for (int i = 0; i < checkpoints; ++i) {
    Bytes cpu = {std::uint8_t(i), 0x5A};
    chain.capture(space, cpu, double(i));
    space.protect_all();
    const int edits = 1 + int(rng.uniform_u64(4));
    for (int e = 0; e < edits; ++e) {
      const mem::PageId id = rng.uniform_u64(14);
      if (!space.contains(id)) {
        space.allocate(id);
      } else if (rng.bernoulli(0.15)) {
        space.free_page(id);
      } else {
        Bytes data(24);
        for (auto& x : data) x = std::uint8_t(rng());
        space.write(id, rng.uniform_u64(kPageSize - data.size()), data);
      }
    }
  }
  std::vector<Bytes> records;
  records.reserve(chain.files().size());
  for (const CheckpointFile& f : chain.files())
    records.push_back(f.serialize());
  return records;
}

bool has_code(const Report& report, CheckCode code) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.code == code) return true;
  return false;
}

/// Runs the verifier asserting no exception escapes — corruption must be
/// reported, not thrown.
Report verify_never_throws(const std::vector<Bytes>& records,
                           ChainVerifier::Options options = {}) {
  const ChainVerifier verifier(options);
  Report report;
  EXPECT_NO_THROW(report = verifier.verify_serialized(records));
  return report;
}

TEST(ChainVerifier, CleanChainIsClean) {
  const auto records = build_chain(6, 1);
  const Report report = verify_never_throws(records);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.replay_complete);
  EXPECT_EQ(report.records_checked, records.size());
  EXPECT_EQ(report.warning_count(), 0u);
  EXPECT_GT(report.bytes_checked, 0u);
}

TEST(ChainVerifier, CleanChainWithMidChainFullIsClean) {
  const auto records = build_chain(8, 2, /*full_period=*/3);
  const Report report = verify_never_throws(records);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.replay_complete);
}

TEST(ChainVerifier, BitFlipAtEveryOffsetIsCaught) {
  auto records = build_chain(4, 3);
  // Exhaustive over a whole (small) record, sampled over the rest: a v2
  // record must have no unprotected byte.
  for (std::size_t rec = 0; rec < records.size(); ++rec) {
    const std::size_t stride = rec == 0 ? 1 : 37;
    for (std::size_t off = 0; off < records[rec].size(); off += stride) {
      for (std::uint8_t bit : {std::uint8_t(1), std::uint8_t(0x80)}) {
        auto corrupted = records;
        corrupted[rec][off] ^= bit;
        const Report report = verify_never_throws(corrupted);
        ASSERT_FALSE(report.ok())
            << "bit flip survived at record " << rec << " offset " << off;
        ASSERT_TRUE(has_code(report, CheckCode::kParseError))
            << "record " << rec << " offset " << off;
      }
    }
  }
}

TEST(ChainVerifier, TruncationAtAnyLengthIsCaught) {
  const auto records = build_chain(4, 4);
  const std::size_t rec = records.size() - 1;
  const std::size_t full = records[rec].size();
  for (std::size_t keep : {std::size_t{0}, std::size_t{7}, std::size_t{11},
                           full / 2, full - 1}) {
    auto corrupted = records;
    corrupted[rec].resize(keep);
    const Report report = verify_never_throws(corrupted);
    ASSERT_FALSE(report.ok()) << "truncation to " << keep << " survived";
    ASSERT_TRUE(has_code(report, CheckCode::kParseError)) << keep;
  }
}

TEST(ChainVerifier, AppendedTrailingBytesAreCaught) {
  auto records = build_chain(3, 5);
  records.back().push_back(0xEE);
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, CheckCode::kParseError));
}

TEST(ChainVerifier, DuplicatedRecordIsCaught) {
  auto records = build_chain(5, 6);
  records.insert(records.begin() + 2, records[2]);
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, CheckCode::kDuplicateSequence));
}

TEST(ChainVerifier, ReorderedRecordsAreCaught) {
  auto records = build_chain(5, 7);
  std::swap(records[2], records[3]);
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, CheckCode::kSequenceNotMonotone));
}

TEST(ChainVerifier, MissingMiddleIncrementalIsCaught) {
  auto records = build_chain(5, 8);
  records.erase(records.begin() + 2);
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(has_code(report, CheckCode::kSequenceGap));
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == CheckCode::kSequenceGap) {
      EXPECT_EQ(d.sequence, 3u);  // the record after the removed seq 2
      EXPECT_NE(d.message.find("1 checkpoint(s) missing"), std::string::npos);
    }
  }
}

TEST(ChainVerifier, MissingLeadingFullIsCaught) {
  auto records = build_chain(4, 9);
  records.erase(records.begin());
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, CheckCode::kBadChainStart));
}

TEST(ChainVerifier, GarbagePayloadBehindValidCrcIsCaught) {
  // A buggy writer can checksum garbage correctly; replay must catch it.
  auto records = build_chain(4, 10);
  Rng rng(99);
  for (std::size_t rec = 1; rec < records.size(); ++rec) {
    auto corrupted = records;
    CheckpointFile f = CheckpointFile::parse(corrupted[rec]);
    for (auto& b : f.payload) b = std::uint8_t(rng());
    corrupted[rec] = f.serialize();  // recomputes a *valid* checksum
    const Report report = verify_never_throws(corrupted);
    ASSERT_FALSE(report.ok()) << "garbage payload survived at " << rec;
    ASSERT_TRUE(has_code(report, CheckCode::kDeltaUndecodable) ||
                has_code(report, CheckCode::kPayloadCorrupt))
        << "record " << rec;
  }
}

TEST(ChainVerifier, GarbageFullPayloadIsCaught) {
  auto records = build_chain(3, 11);
  CheckpointFile f = CheckpointFile::parse(records[0]);
  f.payload.assign(100, 0xAB);
  records[0] = f.serialize();
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, CheckCode::kPayloadCorrupt));
}

TEST(ChainVerifier, UnknownFreedPageIsCaught) {
  auto records = build_chain(4, 12);
  CheckpointFile f = CheckpointFile::parse(records[1]);
  f.freed_pages.push_back(100000);  // never lived
  records[1] = f.serialize();
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, CheckCode::kFreedPageUnknown));
}

TEST(ChainVerifier, FreedPagesInFullRecordAreCaught) {
  auto records = build_chain(3, 13);
  CheckpointFile f = CheckpointFile::parse(records[0]);
  f.freed_pages = {1, 2};
  records[0] = f.serialize();
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, CheckCode::kFreedInFull));
}

TEST(ChainVerifier, ChecksContinuePastTheFirstFault) {
  auto records = build_chain(6, 14);
  records.erase(records.begin() + 1);     // gap
  std::swap(records[2], records[3]);      // and a reorder later
  const Report report = verify_never_throws(records);
  EXPECT_TRUE(has_code(report, CheckCode::kSequenceGap));
  EXPECT_TRUE(has_code(report, CheckCode::kSequenceNotMonotone));
  EXPECT_GE(report.records_checked, records.size());
}

TEST(ChainVerifier, MidChainFullReanchorsReplayAfterFault) {
  auto records = build_chain(8, 15, /*full_period=*/3);
  // Corrupt an early incremental's payload behind a valid checksum; the
  // next full must re-anchor replay so later records are fully checked.
  CheckpointFile f = CheckpointFile::parse(records[1]);
  Rng rng(7);
  for (auto& b : f.payload) b = std::uint8_t(rng());
  records[1] = f.serialize();
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.replay_complete)
      << "a later full checkpoint must restore replay validity";
}

TEST(ChainVerifier, StructuralModeSkipsReplayButCatchesStructure) {
  auto records = build_chain(5, 16);
  records.erase(records.begin() + 2);
  ChainVerifier::Options options;
  options.replay = false;
  const Report report = verify_never_throws(records, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, CheckCode::kSequenceGap));
  EXPECT_FALSE(report.replay_complete);
}

TEST(ChainVerifier, V1RecordWarnsButVerifies) {
  auto records = build_chain(3, 17);
  // Re-encode record 1 as v1: magic AICCKPT1 + the body (no checksum).
  const Bytes& v2 = records[1];
  Bytes v1;
  ByteWriter w(v1);
  w.u64(0x31544B4343494141ULL);
  w.raw(ByteSpan(v2).subspan(12));
  records[1] = v1;
  const Report report = verify_never_throws(records);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(has_code(report, CheckCode::kUncheckedV1));
  EXPECT_EQ(report.warning_count(), 1u);

  ChainVerifier::Options options;
  options.warn_v1 = false;
  EXPECT_EQ(verify_never_throws(records, options).warning_count(), 0u);
}

// ---------- v3 (correcting-coder) chains ----------

TEST(ChainVerifier, CorrectingChainIsCleanAndReplays) {
  const auto records = build_chain(6, 40, 0, /*correcting=*/true);
  bool saw_correcting = false;
  for (const Bytes& b : records) {
    const CheckpointFile f = CheckpointFile::parse(b);
    if (f.kind == CheckpointKind::kIncrementalCorrecting) {
      saw_correcting = true;
      EXPECT_EQ(f.version, CheckpointFile::kVersionV3);
    }
  }
  ASSERT_TRUE(saw_correcting) << "workload produced no cdelta incrementals";
  const Report report = verify_never_throws(records);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.replay_complete);
}

TEST(ChainVerifier, CorrectingChainBitFlipsAreCaught) {
  // Exhaustive over one v3 record, including the magic bytes the v3 CRC
  // now covers (bit 2 of the version digit would otherwise forge a
  // plausible future/past version). A flip may surface as a parse error
  // or — when it lands a digit in '4'..'9' — the typed unsupported-version
  // diagnostic; either way the chain must not verify.
  auto records = build_chain(4, 41, 0, /*correcting=*/true);
  std::size_t rec = 0;
  while (CheckpointFile::parse(records[rec]).kind !=
         CheckpointKind::kIncrementalCorrecting)
    ++rec;
  for (std::size_t off = 0; off < records[rec].size(); ++off) {
    for (std::uint8_t bit :
         {std::uint8_t(1), std::uint8_t(4), std::uint8_t(0x80)}) {
      auto corrupted = records;
      corrupted[rec][off] ^= bit;
      const Report report = verify_never_throws(corrupted);
      ASSERT_FALSE(report.ok())
          << "bit flip survived at v3 record " << rec << " offset " << off;
      ASSERT_TRUE(has_code(report, CheckCode::kParseError) ||
                  has_code(report, CheckCode::kUnsupportedVersion))
          << "record " << rec << " offset " << off;
    }
  }
}

TEST(ChainVerifier, CorrectingGarbagePayloadBehindValidCrcIsCaught) {
  auto records = build_chain(5, 42, 0, /*correcting=*/true);
  Rng rng(43);
  for (std::size_t rec = 1; rec < records.size(); ++rec) {
    auto corrupted = records;
    CheckpointFile f = CheckpointFile::parse(corrupted[rec]);
    for (auto& b : f.payload) b = std::uint8_t(rng());
    corrupted[rec] = f.serialize();  // valid v3 checksum over garbage
    const Report report = verify_never_throws(corrupted);
    ASSERT_FALSE(report.ok()) << "garbage cdelta survived at " << rec;
    ASSERT_TRUE(has_code(report, CheckCode::kDeltaUndecodable) ||
                has_code(report, CheckCode::kPayloadCorrupt))
        << "record " << rec;
  }
}

TEST(ChainVerifier, UnsupportedFutureVersionIsTypedNotCorrupt) {
  auto records = build_chain(3, 44);
  Bytes future;
  for (char c : std::string("AAICCKT7"))  // LE image of a v7 magic
    future.push_back(std::uint8_t(c));
  future.insert(future.end(), 24, std::uint8_t(0));
  records.push_back(future);
  const Report report = verify_never_throws(records);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(has_code(report, CheckCode::kUnsupportedVersion))
      << report.summary();
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code != CheckCode::kUnsupportedVersion) continue;
    EXPECT_NE(d.message.find("newer than this build"), std::string::npos)
        << d.message;
    EXPECT_NE(d.render().find("unsupported-version"), std::string::npos);
  }
}

TEST(ChainVerifier, ParsedChainOverloadMatchesSerialized) {
  const auto records = build_chain(5, 18);
  std::vector<CheckpointFile> parsed;
  parsed.reserve(records.size());
  for (const Bytes& r : records) parsed.push_back(CheckpointFile::parse(r));
  const ChainVerifier verifier;
  const Report from_parsed = verifier.verify(parsed);
  const Report from_bytes = verifier.verify_serialized(records);
  EXPECT_TRUE(from_parsed.ok());
  EXPECT_EQ(from_parsed.diagnostics.size(), from_bytes.diagnostics.size());
  EXPECT_EQ(from_parsed.records_checked, from_bytes.records_checked);
}

TEST(ChainVerifier, DiagnosticRenderAndSummaryNameTheFault) {
  auto records = build_chain(4, 19);
  records.erase(records.begin() + 2);
  const Report report = verify_never_throws(records);
  ASSERT_FALSE(report.ok());
  bool saw_gap = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code != CheckCode::kSequenceGap) continue;
    saw_gap = true;
    const std::string line = d.render();
    EXPECT_NE(line.find("ERROR"), std::string::npos);
    EXPECT_NE(line.find("sequence-gap"), std::string::npos);
    EXPECT_NE(line.find("seq 3"), std::string::npos);
  }
  EXPECT_TRUE(saw_gap);
  EXPECT_NE(report.summary().find("error(s)"), std::string::npos);
}

// The acceptance matrix: every fault class x a fresh chain, asserting the
// global contract — fsck reports, restore never silently succeeds with
// wrong bytes, and nothing crashes.
TEST(ChainVerifier, InjectionMatrixNeverCrashesNeverFalseAccepts) {
  enum class Fault { kBitFlip, kTruncate, kDuplicate, kReorder, kDrop,
                     kGarbagePayload };
  Rng rng(20);
  for (Fault fault : {Fault::kBitFlip, Fault::kTruncate, Fault::kDuplicate,
                      Fault::kReorder, Fault::kDrop,
                      Fault::kGarbagePayload}) {
    for (std::uint64_t seed = 30; seed < 36; ++seed) {
      auto records = build_chain(5, seed);
      switch (fault) {
        case Fault::kBitFlip: {
          const std::size_t rec = rng.uniform_u64(records.size());
          const std::size_t off = rng.uniform_u64(records[rec].size());
          records[rec][off] ^= std::uint8_t(1u << rng.uniform_u64(8));
          break;
        }
        case Fault::kTruncate: {
          const std::size_t rec = rng.uniform_u64(records.size());
          records[rec].resize(rng.uniform_u64(records[rec].size()));
          break;
        }
        case Fault::kDuplicate: {
          const std::size_t rec = rng.uniform_u64(records.size());
          records.insert(records.begin() + rec, records[rec]);
          break;
        }
        case Fault::kReorder: {
          const std::size_t rec = 1 + rng.uniform_u64(records.size() - 2);
          std::swap(records[rec], records[rec + 1]);
          break;
        }
        case Fault::kDrop: {
          records.erase(records.begin() +
                        1 + rng.uniform_u64(records.size() - 1));
          break;
        }
        case Fault::kGarbagePayload: {
          const std::size_t rec = rng.uniform_u64(records.size());
          CheckpointFile f = CheckpointFile::parse(records[rec]);
          f.payload.resize(64 + rng.uniform_u64(256));
          for (auto& b : f.payload) b = std::uint8_t(rng());
          records[rec] = f.serialize();
          break;
        }
      }
      const Report report = verify_never_throws(records);
      ASSERT_FALSE(report.ok())
          << "fault " << int(fault) << " seed " << seed
          << " not detected: " << report.summary();
    }
  }
}

TEST(PartialTransferName, RecognizesStagingSuffix) {
  EXPECT_TRUE(is_partial_transfer_name("ckpt-3.partial"));
  EXPECT_TRUE(is_partial_transfer_name("x.partial"));
  EXPECT_FALSE(is_partial_transfer_name("ckpt-3"));
  EXPECT_FALSE(is_partial_transfer_name(".partial"))
      << "a bare suffix names no object";
  EXPECT_FALSE(is_partial_transfer_name("ckpt-3.partial.bak"));
  EXPECT_FALSE(is_partial_transfer_name("partial"));
  EXPECT_FALSE(is_partial_transfer_name(""));
}

}  // namespace
}  // namespace aic::verify
