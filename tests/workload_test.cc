// Tests for workload/: determinism, restart-replay consistency (the
// property AIC's recovery correctness rests on), phase behaviour, and the
// per-benchmark compression characteristics that drive the paper's
// evaluation.
#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "delta/page_delta.h"
#include "mem/snapshot.h"
#include "workload/workload.h"

namespace aic::workload {
namespace {

TEST(Workload, InitializeBuildsFootprint) {
  auto w = make_spec_workload(SpecBenchmark::kBzip2, 0.25);
  mem::AddressSpace space;
  w->initialize(space);
  EXPECT_EQ(space.page_count(), w->profile().footprint_pages);
  EXPECT_DOUBLE_EQ(w->progress(), 0.0);
  EXPECT_FALSE(w->finished());
}

TEST(Workload, InitializeTwiceThrows) {
  auto w = make_spec_workload(SpecBenchmark::kBzip2, 0.25);
  mem::AddressSpace space;
  w->initialize(space);
  EXPECT_THROW(w->initialize(space), CheckError);
}

TEST(Workload, StepAdvancesProgressAndDirtiesPages) {
  auto w = make_spec_workload(SpecBenchmark::kSjeng, 0.25);
  mem::AddressSpace space;
  w->initialize(space);
  space.protect_all();
  w->step(space, 5.0);
  EXPECT_DOUBLE_EQ(w->progress(), 5.0);
  EXPECT_GT(space.dirty_page_count(), 0u);
}

TEST(Workload, DeterministicAcrossInstances) {
  mem::AddressSpace s1, s2;
  auto w1 = make_spec_workload(SpecBenchmark::kMilc, 0.125);
  auto w2 = make_spec_workload(SpecBenchmark::kMilc, 0.125);
  w1->initialize(s1);
  w2->initialize(s2);
  w1->step(s1, 7.3);
  w2->step(s2, 7.3);
  EXPECT_TRUE(mem::Snapshot::capture(s1).equals_space(s2));
}

TEST(Workload, StepGranularityIrrelevant) {
  // Many small steps == one big step (tick atomicity).
  mem::AddressSpace s1, s2;
  auto w1 = make_spec_workload(SpecBenchmark::kLibquantum, 0.125);
  auto w2 = make_spec_workload(SpecBenchmark::kLibquantum, 0.125);
  w1->initialize(s1);
  w2->initialize(s2);
  w1->step(s1, 6.0);
  for (int i = 0; i < 60; ++i) w2->step(s2, 0.1);
  EXPECT_NEAR(w1->progress(), w2->progress(), 1e-9);
  EXPECT_TRUE(mem::Snapshot::capture(s1).equals_space(s2));
}

TEST(Workload, SubTickStepsAccumulate) {
  mem::AddressSpace s1, s2;
  auto w1 = make_spec_workload(SpecBenchmark::kBzip2, 0.125);
  auto w2 = make_spec_workload(SpecBenchmark::kBzip2, 0.125);
  w1->initialize(s1);
  w2->initialize(s2);
  w1->step(s1, 1.0);
  for (int i = 0; i < 100; ++i) w2->step(s2, 0.01);  // sub-tick steps
  EXPECT_NEAR(w2->progress(), 1.0, 1e-9);
  EXPECT_TRUE(mem::Snapshot::capture(s1).equals_space(s2));
}

TEST(Workload, CpuStateRoundTrip) {
  auto w = make_spec_workload(SpecBenchmark::kSphinx3, 0.25);
  mem::AddressSpace space;
  w->initialize(space);
  w->step(space, 12.5);
  Bytes state = w->cpu_state();

  auto w2 = make_spec_workload(SpecBenchmark::kSphinx3, 0.25);
  w2->restore_cpu_state(state);
  EXPECT_DOUBLE_EQ(w2->progress(), 12.5);
}

TEST(Workload, FinishesAtBaseTime) {
  auto profile = spec_profile(SpecBenchmark::kBzip2, 0.125);
  profile.base_time = 3.0;
  SyntheticWorkload w(std::move(profile));
  mem::AddressSpace space;
  w.initialize(space);
  w.step(space, 100.0);
  EXPECT_DOUBLE_EQ(w.progress(), 3.0);
  EXPECT_TRUE(w.finished());
}

// The core recovery property: checkpoint at time T, keep running, crash,
// restore, replay — the replayed trajectory must byte-for-byte match the
// original (same memory at any later common point).
TEST(Workload, RestartReplayMatchesOriginal) {
  for (auto b : {SpecBenchmark::kBzip2, SpecBenchmark::kSjeng,
                 SpecBenchmark::kLbm}) {
    auto w = make_spec_workload(b, 0.125);
    mem::AddressSpace space;
    w->initialize(space);
    w->step(space, 4.0);

    // Checkpoint (full) at T=4.
    ckpt::CheckpointChain chain;
    chain.capture(space, w->cpu_state(), 4.0);

    // Run on to T=9: this is the "original" trajectory.
    w->step(space, 5.0);
    mem::Snapshot original = mem::Snapshot::capture(space);

    // Crash & restore: fresh space from the checkpoint, fresh workload
    // rewound via cpu state, replay to T=9.
    auto restored = chain.restore();
    mem::AddressSpace replay_space = restored.memory.materialize();
    auto w2 = make_spec_workload(b, 0.125);
    w2->restore_cpu_state(restored.cpu_state);
    EXPECT_DOUBLE_EQ(w2->progress(), 4.0);
    w2->step(replay_space, 5.0);

    EXPECT_TRUE(original.equals_space(replay_space))
        << "replay diverged for " << to_string(b);
  }
}

TEST(Workload, AllBenchmarksListed) {
  EXPECT_EQ(all_benchmarks().size(), 6u);
  for (auto b : all_benchmarks()) {
    auto p = spec_profile(b, 0.125);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.base_time, 100.0);
    EXPECT_GE(p.footprint_pages, 64u);
    EXPECT_FALSE(p.phases.empty());
  }
}

TEST(Workload, BaseTimesMatchPaperTable3) {
  EXPECT_DOUBLE_EQ(spec_profile(SpecBenchmark::kBzip2).base_time, 152.0);
  EXPECT_DOUBLE_EQ(spec_profile(SpecBenchmark::kSjeng).base_time, 661.0);
  EXPECT_DOUBLE_EQ(spec_profile(SpecBenchmark::kLibquantum).base_time, 846.0);
  EXPECT_DOUBLE_EQ(spec_profile(SpecBenchmark::kMilc).base_time, 527.0);
  EXPECT_DOUBLE_EQ(spec_profile(SpecBenchmark::kLbm).base_time, 462.0);
  EXPECT_DOUBLE_EQ(spec_profile(SpecBenchmark::kSphinx3).base_time, 749.0);
}

/// Helper: run one incremental-delta checkpoint after `interval` seconds
/// and report (dirty pages, compression ratio).
struct IntervalProbe {
  std::size_t dirty = 0;
  double ratio = 1.0;
  std::uint64_t delta_bytes = 0;
};
IntervalProbe probe_interval(SpecBenchmark b, double warm, double interval,
                             double scale) {
  auto w = make_spec_workload(b, scale);
  mem::AddressSpace space;
  w->initialize(space);
  w->step(space, warm);
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  w->step(space, interval);

  delta::PageAlignedCompressor pa;
  std::vector<delta::DirtyPage> dirty;
  for (auto id : space.dirty_pages()) dirty.push_back({id, space.page_bytes(id)});
  auto res = pa.compress(dirty, prev);
  return {dirty.size(), res.stats.ratio(), res.stats.output_bytes};
}

TEST(WorkloadCharacteristics, SphinxDeltasAreTiny) {
  auto sphinx = probe_interval(SpecBenchmark::kSphinx3, 5.0, 10.0, 0.25);
  auto milc = probe_interval(SpecBenchmark::kMilc, 5.0, 10.0, 0.25);
  EXPECT_LT(sphinx.delta_bytes * 20, milc.delta_bytes)
      << "sphinx3 deltas must be far smaller than milc's";
  EXPECT_LT(sphinx.ratio, 0.5) << "counter updates compress well";
}

TEST(WorkloadCharacteristics, LbmBarelyCompressible) {
  auto lbm = probe_interval(SpecBenchmark::kLbm, 5.0, 10.0, 0.25);
  EXPECT_GT(lbm.ratio, 0.7) << "streaming rewrites defeat delta compression";
}

TEST(WorkloadCharacteristics, SjengSwingsAcrossPhases) {
  // Fig. 2's swing: with the previous checkpoint at a cycle boundary
  // (post-consolidation, t = 33), a second checkpoint taken mid-burst
  // (t = 52) sees scratch state everywhere, while one taken at the next
  // boundary (t = 66) sees pages reverted to near-canonical content.
  auto mid_burst = probe_interval(SpecBenchmark::kSjeng, 33.0, 19.0, 0.25);
  auto boundary = probe_interval(SpecBenchmark::kSjeng, 33.0, 33.0, 0.25);
  EXPECT_GT(mid_burst.delta_bytes, 5 * boundary.delta_bytes);
}

}  // namespace
}  // namespace aic::workload
