// Ground-truth tests for the AIC decider's w_L* search: the online
// Newton–Raphson + Extreme Value Theorem comparison
// (model::extreme_value_minimum) must match a brute-force grid
// minimization of the same adaptive NET^2 objective across randomized
// system/interval profiles. Comparison is by objective VALUE, not by
// argmin position — the NET^2 curve can be extremely flat around its
// minimum, where two far-apart spans are equally good.
//
// Also stresses the degenerate shapes the EVT frame exists for: flat
// objectives, boundary optima, and the infeasibility cliff below
// w = SF*(c3_prev - c1_prev), plus the EvtDiag diagnostics the decider's
// instrumentation records.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/interval_models.h"
#include "model/optimizer.h"
#include "model/system_profile.h"

namespace aic::model {
namespace {

constexpr double kMinW = 1.0;
constexpr double kMaxW = 1e5;

/// Brute-force reference: dense log grid + golden-section refinement.
OptResult brute_force(const ScalarFn& f, double lo, double hi) {
  return minimize_scalar(f, lo, hi, 512, 100);
}

SystemProfile random_profile(Rng& rng) {
  SystemProfile sys;
  const auto split = split_rate(rng.uniform(1e-5, 1e-3));
  sys.lambda = {split[0], split[1], split[2]};
  sys.c[0] = rng.uniform(0.1, 2.0);
  sys.c[1] = sys.c[0] * rng.uniform(1.5, 5.0);
  sys.c[2] = sys.c[1] * rng.uniform(5.0, 80.0);
  sys.r = sys.c;
  sys.sharing_factor = rng.uniform() < 0.5 ? 1.0 : 2.0;
  return sys;
}

IntervalParams perturbed(const SystemProfile& sys, Rng& rng) {
  IntervalParams p = IntervalParams::from_profile(sys);
  const double jitter = rng.uniform(0.7, 1.3);
  p.c1 *= jitter;
  p.c2 *= rng.uniform(0.7, 1.3);
  p.c3 *= rng.uniform(0.7, 1.3);
  // Keep the model's ordering assumption intact.
  p.c2 = std::max(p.c2, p.c1);
  p.c3 = std::max(p.c3, p.c2);
  p.r1 = p.c1;
  p.r2 = p.c2;
  p.r3 = p.c3;
  return p;
}

TEST(DeciderTest, MatchesBruteForceAcrossRandomProfiles) {
  Rng rng(20130521);  // the paper's conference date, for want of tradition
  for (int trial = 0; trial < 20; ++trial) {
    const SystemProfile sys = random_profile(rng);
    const IntervalParams cur = perturbed(sys, rng);
    const IntervalParams prev = perturbed(sys, rng);
    auto objective = [&](double w) {
      return net2_adaptive(sys, w, cur, prev);
    };

    EvtDiag diag;
    const double x0 = rng.uniform(kMinW, 100.0);
    const OptResult evt =
        extreme_value_minimum(objective, kMinW, kMaxW, x0, &diag);
    const OptResult grid = brute_force(objective, kMinW, kMaxW);

    ASSERT_TRUE(std::isfinite(evt.value)) << "trial " << trial;
    ASSERT_GE(evt.x, kMinW);
    ASSERT_LE(evt.x, kMaxW);
    // The online search must be as good as brute force (by value; the
    // grid itself carries discretization error, hence the tolerance).
    EXPECT_LE(evt.value, grid.value * (1.0 + 1e-3) + 1e-12)
        << "trial " << trial << ": evt at w=" << evt.x << " value "
        << evt.value << " vs grid w=" << grid.x << " value " << grid.value;

    EXPECT_GE(diag.newton_iters, 0);
    EXPECT_LE(diag.newton_iters, 200);
  }
}

TEST(DeciderTest, ReplanAfterResizeMatchesBruteForce) {
  // Elastic reconfiguration: the system profile rescales (lambda and c3
  // move with the width) and the decider re-plans w_L* warm-started at the
  // PRE-resize optimum — the worst seed for the local search, since the
  // old optimum can sit far from the new one, or inside the new
  // infeasibility cliff. The re-plan must still match brute force on the
  // post-resize objective across randomized profiles and resize factors.
  Rng rng(0xE1A571C);
  for (int trial = 0; trial < 20; ++trial) {
    const SystemProfile before = random_profile(rng);
    const IntervalParams prev = perturbed(before, rng);
    auto pre_objective = [&](double w) {
      return net2_adaptive(before, w, prev, prev);
    };
    const OptResult pre =
        extreme_value_minimum(pre_objective, kMinW, kMaxW, 50.0);

    // Grow or shrink by up to 4x; MPI scaling moves lambda and c3.
    const double factor = trial % 2 == 0 ? rng.uniform(1.0, 4.0)
                                         : rng.uniform(0.25, 1.0);
    const SystemProfile after = before.scaled_mpi(factor);
    const IntervalParams cur = perturbed(after, rng);
    auto post_objective = [&](double w) {
      return net2_adaptive(after, w, cur, prev);
    };

    EvtDiag diag;
    const double x0 = std::clamp(pre.x, kMinW, kMaxW);
    const OptResult replan =
        extreme_value_minimum(post_objective, kMinW, kMaxW, x0, &diag);
    const OptResult grid = brute_force(post_objective, kMinW, kMaxW);

    ASSERT_TRUE(std::isfinite(replan.value))
        << "trial " << trial << " factor " << factor;
    EXPECT_LE(replan.value, grid.value * (1.0 + 1e-3) + 1e-12)
        << "trial " << trial << " factor " << factor << ": replan at w="
        << replan.x << " value " << replan.value << " vs grid w=" << grid.x
        << " value " << grid.value;
    EXPECT_LE(diag.newton_iters, 200);
  }
}

TEST(DeciderTest, FlatObjectiveIsHandled) {
  auto flat = [](double) { return 5.0; };
  EvtDiag diag;
  const OptResult r = extreme_value_minimum(flat, kMinW, kMaxW, 10.0, &diag);
  EXPECT_DOUBLE_EQ(r.value, 5.0);
  EXPECT_GE(r.x, kMinW);
  EXPECT_LE(r.x, kMaxW);
  EXPECT_GE(diag.newton_iters, 0);
}

TEST(DeciderTest, BoundaryOptimaAreFound) {
  // Strictly increasing: minimum at the lower boundary.
  auto inc = [](double w) { return w; };
  EvtDiag diag_lo;
  const OptResult lo = extreme_value_minimum(inc, kMinW, kMaxW, 50.0, &diag_lo);
  EXPECT_DOUBLE_EQ(lo.value, kMinW);
  EXPECT_DOUBLE_EQ(lo.x, kMinW);

  // Strictly decreasing: minimum at the upper boundary.
  auto dec = [](double w) { return -w; };
  const OptResult hi = extreme_value_minimum(dec, kMinW, kMaxW, 50.0, nullptr);
  EXPECT_DOUBLE_EQ(hi.value, -kMaxW);
  EXPECT_DOUBLE_EQ(hi.x, kMaxW);
}

TEST(DeciderTest, InteriorMinimumBeatsBoundaries) {
  // A clean convex bowl: the NR stationary point should win and land near
  // the analytic minimum.
  auto bowl = [](double w) { return (w - 300.0) * (w - 300.0) + 7.0; };
  EvtDiag diag;
  const OptResult r = extreme_value_minimum(bowl, kMinW, kMaxW, 10.0, &diag);
  EXPECT_NEAR(r.x, 300.0, 1.0);
  EXPECT_NEAR(r.value, 7.0, 1e-3);
  EXPECT_FALSE(diag.used_boundary);
}

TEST(DeciderTest, InfeasibilityCliffDoesNotTrapTheSearch) {
  // Mimics the adaptive NET^2 shape: a huge plateau below the feasibility
  // threshold, a well-behaved valley above it. NR seeded inside the cliff
  // must still find the valley (the coarse-grid safeguard).
  const double cliff = 800.0;
  auto f = [&](double w) {
    if (w < cliff) return 1e12;
    const double v = w - 2000.0;
    return v * v / 1e4 + 2.0;
  };
  EvtDiag diag;
  const OptResult r = extreme_value_minimum(f, kMinW, kMaxW, 2.0, &diag);
  const OptResult grid = brute_force(f, kMinW, kMaxW);
  EXPECT_LE(r.value, grid.value * (1.0 + 1e-3));
  EXPECT_NEAR(r.x, 2000.0, 50.0);
}

TEST(DeciderTest, DiagReportsBoundaryWhenStationaryLoses) {
  auto inc = [](double w) { return std::log(w); };
  EvtDiag diag;
  const OptResult r = extreme_value_minimum(inc, kMinW, kMaxW, 100.0, &diag);
  EXPECT_DOUBLE_EQ(r.x, kMinW);
  // Monotone objective: no interior stationary point exists, so the EVT
  // boundary comparison is what found the minimum.
  EXPECT_TRUE(diag.used_boundary);
}

}  // namespace
}  // namespace aic::model
