// Tests for the fleet service: admission-controller decision paths,
// QosPolicy validation and installation, and the FleetScheduler's core
// guarantee — byte-identical counters, timelines, and digests under any
// shard count for a fixed seed — plus per-tenant accounting and the obs
// export.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fleet/admission.h"
#include "fleet/fleet_scheduler.h"
#include "fleet/qos_policy.h"
#include "obs/names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "workload/lanl_trace.h"

namespace aic::fleet {
namespace {

namespace on = obs::names;

workload::FleetJobSpec spec_of(std::uint64_t id, double footprint_mb,
                               double dirty = 0.1) {
  workload::FleetJobSpec s;
  s.job_id = id;
  s.tenant = std::uint32_t(id % 4);
  s.arrival_s = double(id);
  s.work_s = 100.0;
  s.footprint_bytes = std::uint64_t(footprint_mb * 1024 * 1024);
  s.dirty_fraction = dirty;
  return s;
}

TEST(FleetAdmission, DemandScalesWithDeltaAndInterval) {
  AdmissionConfig cfg;
  cfg.capacity_bps = 1.0e8;
  cfg.lambda_total = 1.0e-3;
  cfg.min_interval_s = 1.0;
  cfg.max_interval_s = 1.0e6;
  AdmissionController ctrl(cfg);

  const double d_small = ctrl.demand_bps(spec_of(1, 10.0));
  const double d_big = ctrl.demand_bps(spec_of(2, 1000.0));
  EXPECT_GT(d_small, 0.0);
  EXPECT_GT(d_big, d_small)
      << "a bigger delta demands more steady-state bandwidth";
  // demand = delta / w* with w* ~ sqrt(delta): sub-linear, not linear.
  EXPECT_LT(d_big, d_small * 100.0);
}

TEST(FleetAdmission, AdmitsUntilBudgetThenQueuesThenRejects) {
  AdmissionConfig cfg;
  cfg.capacity_bps = 1.0e8;
  cfg.target_utilization = 0.5;
  cfg.queue_capacity = 2;
  cfg.lambda_total = 1.0e-3;
  AdmissionController ctrl(cfg);

  const auto job = spec_of(1, 500.0);
  const double demand = ctrl.demand_bps(job);
  ASSERT_GT(demand, 0.0);
  const int fit = int(ctrl.budget_bps() / demand);
  ASSERT_GE(fit, 1);

  int admitted = 0, queued = 0, rejected = 0;
  for (int i = 0; i < fit + 5; ++i) {
    switch (ctrl.offer(spec_of(std::uint64_t(i + 1), 500.0))) {
      case AdmissionDecision::kAdmitted: ++admitted; break;
      case AdmissionDecision::kQueued: ++queued; break;
      case AdmissionDecision::kRejected: ++rejected; break;
    }
  }
  EXPECT_EQ(admitted, fit);
  EXPECT_EQ(queued, 2) << "queue_capacity bounds the backlog";
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(ctrl.admitted_total(), std::uint64_t(fit));
  EXPECT_EQ(ctrl.queued(), 2u);
  EXPECT_EQ(ctrl.rejected_total(), 3u);
  EXPECT_LE(ctrl.admitted_demand_bps(), ctrl.budget_bps());

  // Releasing one admitted job frees room for exactly one queued job.
  ctrl.release(job);
  const auto promoted = ctrl.drain_queue();
  EXPECT_EQ(promoted.size(), 1u);
  EXPECT_EQ(ctrl.queued(), 1u);
}

TEST(FleetAdmission, OversizedJobIsRejectedNotQueued) {
  AdmissionConfig cfg;
  cfg.capacity_bps = 1.0e6;
  cfg.target_utilization = 0.1;
  cfg.min_interval_s = 1.0;
  cfg.max_interval_s = 2.0;
  AdmissionController ctrl(cfg);
  // Demand = delta / w* with w* clamped tiny: far beyond the budget.
  EXPECT_EQ(ctrl.offer(spec_of(1, 10000.0)), AdmissionDecision::kRejected);
  EXPECT_EQ(ctrl.queued(), 0u)
      << "a job that can never fit must not wedge the FIFO";
  EXPECT_EQ(ctrl.rejected_total(), 1u);
}

TEST(FleetAdmission, StrictFifoPromotion) {
  AdmissionConfig cfg;
  cfg.capacity_bps = 1.0e8;
  cfg.target_utilization = 0.5;
  cfg.lambda_total = 1.0e-3;
  AdmissionController ctrl(cfg);

  // Fill the budget with 500 MB jobs; the loop's last offer queues one.
  while (ctrl.offer(spec_of(ctrl.admitted_total() + 1, 500.0)) ==
         AdmissionDecision::kAdmitted) {
  }
  ASSERT_EQ(ctrl.queued(), 1u);
  // A small job queues behind the big FIFO head.
  ASSERT_EQ(ctrl.offer(spec_of(901, 1.0)), AdmissionDecision::kQueued);

  // Free only a small job's worth of demand: the small job would fit, but
  // strict FIFO refuses to promote past the big head — no starvation of
  // large jobs.
  ctrl.release(spec_of(902, 1.0));
  EXPECT_TRUE(ctrl.drain_queue().empty());
  EXPECT_EQ(ctrl.queued(), 2u);

  // Free the head's worth: both jobs promote, in queue order.
  ctrl.release(spec_of(903, 500.0));
  const auto promoted = ctrl.drain_queue();
  ASSERT_EQ(promoted.size(), 2u);
  EXPECT_GT(promoted[0].footprint_bytes, promoted[1].footprint_bytes);
  EXPECT_EQ(ctrl.queued(), 0u);
}

TEST(FleetAdmission, ResizeRepricesDemandAndReleaseUsesCurrentWidth) {
  AdmissionConfig cfg;
  cfg.capacity_bps = 1.0e8;
  cfg.target_utilization = 0.5;
  cfg.lambda_total = 1.0e-3;
  AdmissionController ctrl(cfg);

  const auto job = spec_of(1, 200.0);
  ASSERT_EQ(ctrl.offer(job), AdmissionDecision::kAdmitted);
  const double base = ctrl.admitted_demand_bps();
  ASSERT_GT(base, 0.0);

  // Grow 4x: the reservation moves to the new width.
  ctrl.resize(job, 4.0);
  EXPECT_DOUBLE_EQ(ctrl.width_factor(1), 4.0);
  const double grown = ctrl.admitted_demand_bps();
  EXPECT_GT(grown, base);
  EXPECT_NEAR(grown, ctrl.demand_bps(job, 4.0), 1e-9);

  // Regression: release must subtract the CURRENT-width demand. Computing
  // it from the spec alone (admission-time width) leaks the grown job's
  // extra reservation forever — head-room the fleet never gets back.
  ctrl.release(job);
  EXPECT_NEAR(ctrl.admitted_demand_bps(), 0.0, 1e-9)
      << "release after a grow leaked reserved demand";
  EXPECT_DOUBLE_EQ(ctrl.width_factor(1), 1.0) << "release forgets the factor";

  // Shrink direction, witnessed through a second admitted job: an
  // admission-time release would over-free and strand b's reservation
  // below its true demand.
  const auto a = spec_of(2, 200.0);
  const auto b = spec_of(3, 200.0);
  ASSERT_EQ(ctrl.offer(a), AdmissionDecision::kAdmitted);
  ASSERT_EQ(ctrl.offer(b), AdmissionDecision::kAdmitted);
  ctrl.resize(a, 0.25);
  EXPECT_NEAR(ctrl.admitted_demand_bps(),
              ctrl.demand_bps(a, 0.25) + ctrl.demand_bps(b), 1e-9);
  ctrl.release(a);
  EXPECT_NEAR(ctrl.admitted_demand_bps(), ctrl.demand_bps(b), 1e-9)
      << "release after a shrink must not eat the other job's reservation";

  // Resizing back to the base width erases the tracked factor entirely.
  ctrl.resize(b, 2.0);
  ctrl.resize(b, 1.0);
  EXPECT_NEAR(ctrl.admitted_demand_bps(), ctrl.demand_bps(b), 1e-9);
  ctrl.release(b);
  EXPECT_NEAR(ctrl.admitted_demand_bps(), 0.0, 1e-9);
}

TEST(FleetQosPolicy, ValidatesAndApplies) {
  QosPolicy policy;
  EXPECT_THROW(policy.set(Tenant{1, "bad", {0.0, 0.0}}), CheckError);
  EXPECT_THROW(policy.set(Tenant{1, "bad", {1.0, -1.0}}), CheckError);

  policy.set(Tenant{1, "gold", {1.0, 600.0}});
  policy.set(Tenant{2, "bronze", {2.0, 0.0}});
  EXPECT_DOUBLE_EQ(policy.reserved_total_bps(), 600.0);
  EXPECT_DOUBLE_EQ(policy.qos_for(2).weight, 2.0);
  EXPECT_DOUBLE_EQ(policy.qos_for(7).weight, 1.0) << "unknown: best-effort";

  // A policy whose reservations oversubscribe the fleet channel surfaces
  // the transfer engine's typed error at startup, via the scheduler ctor.
  QosPolicy over;
  over.set(Tenant{1, "a", {1.0, 700.0}});
  over.set(Tenant{2, "b", {1.0, 500.0}});
  FleetConfig cfg;
  cfg.bandwidth_bps = 1000.0;
  EXPECT_THROW(FleetScheduler(cfg, {}, over), xfer::ReservationError);
}

FleetConfig small_fleet_config(int shards, std::uint64_t seed) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.seed = seed;
  cfg.quantum_s = 2.0;
  cfg.bandwidth_bps = 1.0e8;
  cfg.latency_s = 1.0e-3;
  cfg.chunk_bytes = 256 * 1024;
  cfg.lambda_total = 2.0e-3;
  cfg.restart_s = 5.0;
  cfg.min_interval_s = 5.0;
  cfg.max_interval_s = 120.0;
  cfg.full_every = 4;
  cfg.max_virtual_s = 7200.0;
  return cfg;
}

std::vector<workload::FleetJobSpec> small_mix(std::uint64_t seed) {
  workload::FleetMixConfig mix;
  mix.jobs = 40;
  mix.tenants = 4;
  mix.seed = seed;
  mix.arrival_horizon_s = 60.0;
  mix.min_work_s = 30.0;
  mix.max_work_s = 120.0;
  mix.pages_per_process = 64;
  return workload::lanl_fleet_jobs(mix);
}

struct RunSummary {
  std::uint64_t digest = 0;
  FleetReport report;
  std::map<std::uint64_t, JobStats> per_job;
};

RunSummary run_fleet(int shards, std::uint64_t seed) {
  auto jobs = small_mix(7);
  FleetScheduler fleet(small_fleet_config(shards, seed), jobs, QosPolicy{});
  fleet.run();
  RunSummary s;
  s.digest = fleet.digest();
  s.report = fleet.report();
  for (const auto& j : jobs) s.per_job[j.job_id] = fleet.job_stats(j.job_id);
  return s;
}

TEST(FleetDeterminism, ShardCountDoesNotChangeTheTimeline) {
  const RunSummary one = run_fleet(1, 42);
  const RunSummary two = run_fleet(2, 42);
  const RunSummary four = run_fleet(4, 42);

  ASSERT_TRUE(one.report.complete);
  EXPECT_GT(one.report.commits, 0u);
  EXPECT_GT(one.report.failures, 0u)
      << "the mix must exercise the failure path for this test to mean much";

  for (const RunSummary* other : {&two, &four}) {
    EXPECT_EQ(one.digest, other->digest);
    EXPECT_EQ(one.report.elapsed_s, other->report.elapsed_s);
    EXPECT_EQ(one.report.checkpoints, other->report.checkpoints);
    EXPECT_EQ(one.report.commits, other->report.commits);
    EXPECT_EQ(one.report.failures, other->report.failures);
    EXPECT_EQ(one.report.net2_bytes, other->report.net2_bytes);
    EXPECT_EQ(one.report.finished, other->report.finished);
    EXPECT_EQ(one.report.tts_p99_s, other->report.tts_p99_s);
    for (const auto& [id, stats] : one.per_job) {
      const JobStats& o = other->per_job.at(id);
      EXPECT_EQ(stats.checkpoints, o.checkpoints) << "job " << id;
      EXPECT_EQ(stats.commits, o.commits) << "job " << id;
      EXPECT_EQ(stats.failures, o.failures) << "job " << id;
      EXPECT_EQ(stats.interrupts, o.interrupts) << "job " << id;
      EXPECT_EQ(stats.net2_bytes, o.net2_bytes) << "job " << id;
      EXPECT_EQ(stats.finish_time, o.finish_time) << "job " << id;
    }
    for (const auto& [tenant, ts] : one.report.tenants) {
      const TenantStats& o = other->report.tenants.at(tenant);
      EXPECT_EQ(ts.commits, o.commits);
      EXPECT_EQ(ts.net2_bytes, o.net2_bytes);
      EXPECT_EQ(ts.tts_p99_s, o.tts_p99_s);
    }
  }
}

TEST(FleetDeterminism, SeedChangesTheTimeline) {
  const RunSummary a = run_fleet(1, 42);
  const RunSummary b = run_fleet(1, 43);
  EXPECT_NE(a.digest, b.digest)
      << "a different seed must produce a different failure timeline";
}

TEST(FleetDeterminism, TelemetryIsAPureReaderOfTheTimeline) {
  // The telemetry plane (sampler + SLO engine + causal log) attached to
  // the round-boundary tick must not perturb the simulation: the digest
  // stays byte-identical to the unobserved run, at every shard count.
  const RunSummary bare = run_fleet(1, 42);

  auto observed = [&](int shards) {
    auto hub = std::make_unique<obs::Hub>();
    obs::Telemetry& tel = hub->enable_telemetry();
    tel.slo().add_rule("tts: fleet.time_to_safe_seconds.p99 < 1e6");
    tel.slo().add_rule("goodput: fleet.goodput_bps > 0 budget 0.5 burn 60/600 x1");
    FleetConfig cfg = small_fleet_config(shards, 42);
    cfg.obs = hub.get();
    FleetScheduler fleet(cfg, small_mix(7), QosPolicy{});
    fleet.run();
    return std::pair(fleet.digest(), std::move(hub));
  };

  const auto [d1, hub1] = observed(1);
  const auto [d2, hub2] = observed(2);
  const auto [d4, hub4] = observed(4);
  EXPECT_EQ(d1, bare.digest)
      << "attaching telemetry changed the simulated timeline";
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d4);

  // The attached plane actually recorded the run: per-tenant goodput
  // series exist for every tenant in the mix, the fleet gauges ticked,
  // and causal chains closed for committed checkpoints.
  obs::Telemetry& tel = *hub1->telemetry();
  EXPECT_GT(tel.ticks(), 0u);
  const obs::TimeseriesStore& store = tel.store();
  EXPECT_NE(store.find(on::kFleetGoodputBps), nullptr);
  for (std::uint64_t tenant = 0; tenant < 4; ++tenant) {
    const obs::Series* s = store.find(
        on::tenant_metric(tenant, on::kTenantGoodputBps));
    ASSERT_NE(s, nullptr) << "tenant " << tenant;
    EXPECT_GT(s->size(), 0u);
  }
  EXPECT_GT(tel.causal().closed(), 0u);
  EXPECT_FALSE(tel.causal().slowest().empty());

  // And the frozen doc round-trips through the recorded-run JSON format
  // that aic_top consumes.
  const obs::TelemetryDoc doc = tel.doc();
  const obs::TelemetryDoc back =
      obs::telemetry_from_json(obs::telemetry_to_json(doc));
  EXPECT_EQ(back.series.size(), doc.series.size());
  EXPECT_EQ(back.rules.size(), doc.rules.size());
  EXPECT_EQ(back.status.size(), doc.status.size());
  EXPECT_EQ(back.events.size(), doc.events.size());
  EXPECT_EQ(back.slowest.size(), doc.slowest.size());
  EXPECT_DOUBLE_EQ(back.now_s, doc.now_s);
  ASSERT_FALSE(doc.slowest.empty());
  EXPECT_EQ(back.slowest[0].label, doc.slowest[0].label);
  EXPECT_DOUBLE_EQ(back.slowest[0].total_s, doc.slowest[0].total_s);
}

TEST(FleetScheduler, CompletesAndAccountsPerTenant) {
  auto jobs = small_mix(11);
  obs::Hub hub;
  FleetConfig cfg = small_fleet_config(1, 5);
  cfg.obs = &hub;
  FleetScheduler fleet(cfg, jobs, QosPolicy{});
  fleet.run();

  const FleetReport r = fleet.report();
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.jobs, 40u);
  EXPECT_EQ(r.finished, r.admitted);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_GT(r.commits, 0u);
  EXPECT_GT(r.goodput_bps, 0.0);
  EXPECT_GE(r.tts_p99_s, r.tts_p50_s);

  // Per-tenant slices cover all four tenants and sum to the totals.
  ASSERT_EQ(r.tenants.size(), 4u);
  std::uint64_t commits = 0, net2 = 0, finished = 0;
  for (const auto& [tenant, t] : r.tenants) {
    commits += t.commits;
    net2 += t.net2_bytes;
    finished += t.jobs_finished;
    EXPECT_GT(t.goodput_bps, 0.0) << "tenant " << tenant;
  }
  EXPECT_EQ(commits, r.commits);
  EXPECT_EQ(net2, r.net2_bytes);
  EXPECT_EQ(finished, r.finished);

  // The obs export mirrors the report: aggregate counters and per-tenant
  // gauges under fleet.tenant.<id>.*.
  const obs::MetricsSnapshot snap = hub.metrics.snapshot();
  EXPECT_EQ(snap.counter_or_zero(on::kFleetCommits), r.commits);
  EXPECT_EQ(snap.counter_or_zero(on::kFleetJobsFinished), r.finished);
  EXPECT_EQ(snap.counter_or_zero(on::kFleetNet2Bytes), r.net2_bytes);
  const auto tenant0 = r.tenants.begin()->first;
  EXPECT_GT(
      snap.gauge_or(on::tenant_metric(tenant0, on::kTenantGoodputBps), 0.0),
      0.0);
}

TEST(FleetScheduler, AdmissionBackpressureSerializesJobs) {
  auto jobs = small_mix(13);
  FleetConfig cfg = small_fleet_config(1, 9);
  // Shrink the budget until only a few jobs fit at a time: the rest must
  // flow through the queue, and the fleet must still finish everyone.
  cfg.admission.target_utilization = 0.02;
  cfg.admission.queue_capacity = 64;
  FleetScheduler fleet(cfg, jobs, QosPolicy{});
  fleet.run();

  const FleetReport r = fleet.report();
  ASSERT_TRUE(r.complete);
  EXPECT_GT(r.queued, 0u) << "the tight budget must force queueing";
  EXPECT_EQ(r.finished, r.admitted);
  EXPECT_EQ(r.finished + r.rejected, r.jobs);
  EXPECT_GT(r.elapsed_s, small_fleet_config(1, 9).quantum_s)
      << "serialized admission stretches the fleet timeline";
}

TEST(FleetScheduler, ReservedTenantSeesFasterTimeToSafe) {
  auto jobs = small_mix(17);
  FleetConfig cfg = small_fleet_config(1, 21);
  // A congested channel: all tenants contend hard for drain bandwidth.
  cfg.bandwidth_bps = 2.0e6;
  QosPolicy policy;
  policy.set(Tenant{0, "gold", {1.0, 1.0e6}});  // half the channel, reserved

  FleetScheduler fleet(cfg, jobs, policy);
  fleet.run();
  const FleetReport r = fleet.report();
  ASSERT_GT(r.commits, 0u);
  const TenantStats& gold = r.tenants.at(0);
  ASSERT_GT(gold.commits, 0u);
  const double gold_mean_tts = gold.tts_sum_s / double(gold.commits);
  double be_tts_sum = 0.0;
  std::uint64_t be_commits = 0;
  for (const auto& [tenant, t] : r.tenants) {
    if (tenant == 0) continue;
    be_tts_sum += t.tts_sum_s;
    be_commits += t.commits;
  }
  ASSERT_GT(be_commits, 0u);
  const double be_mean_tts = be_tts_sum / double(be_commits);
  EXPECT_LT(gold_mean_tts, be_mean_tts)
      << "a hard reservation must shield the tenant from contention";
}

/// The small mix with elastic reconfigurations layered on: every third job
/// grows 2x a third of the way in, every fifth halves near the end —
/// boundaries inside the work span, so failures can rewind across them.
std::vector<workload::FleetJobSpec> elastic_mix(std::uint64_t seed) {
  auto jobs = small_mix(seed);
  for (auto& j : jobs) {
    if (j.job_id % 3 == 0) j.resizes.push_back({j.work_s * 0.3, 2.0});
    if (j.job_id % 5 == 0) j.resizes.push_back({j.work_s * 0.7, 0.5});
  }
  return jobs;
}

RunSummary run_elastic(int shards, std::size_t rewind_budget,
                       obs::Hub* hub = nullptr) {
  auto jobs = elastic_mix(7);
  FleetConfig cfg = small_fleet_config(shards, 42);
  cfg.rewind_budget = rewind_budget;
  cfg.obs = hub;
  FleetScheduler fleet(cfg, jobs, QosPolicy{});
  fleet.run();
  RunSummary s;
  s.digest = fleet.digest();
  s.report = fleet.report();
  for (const auto& j : jobs) s.per_job[j.job_id] = fleet.job_stats(j.job_id);
  return s;
}

TEST(FleetElastic, ShardCountDoesNotChangeTheElasticTimeline) {
  const RunSummary one = run_elastic(1, 4);
  const RunSummary two = run_elastic(2, 4);
  const RunSummary four = run_elastic(4, 4);

  ASSERT_TRUE(one.report.complete);
  EXPECT_GT(one.report.resizes, 0u)
      << "the elastic mix must actually reconfigure";
  EXPECT_GT(one.report.failures, 0u);
  EXPECT_GT(one.report.rewind_discards, 0u)
      << "budget 4 must overflow on this mix";

  for (const RunSummary* other : {&two, &four}) {
    EXPECT_EQ(one.digest, other->digest)
        << "resize actions and rewind evictions are digest-covered: any "
           "shard-dependence in the elastic path shows up here";
    EXPECT_EQ(one.report.elapsed_s, other->report.elapsed_s);
    EXPECT_EQ(one.report.checkpoints, other->report.checkpoints);
    EXPECT_EQ(one.report.commits, other->report.commits);
    EXPECT_EQ(one.report.resizes, other->report.resizes);
    EXPECT_EQ(one.report.rewind_discards, other->report.rewind_discards);
    EXPECT_EQ(one.report.rewind_live_bytes, other->report.rewind_live_bytes);
    EXPECT_EQ(one.report.net2_bytes, other->report.net2_bytes);
    for (const auto& [id, stats] : one.per_job) {
      const JobStats& o = other->per_job.at(id);
      EXPECT_EQ(stats.resizes, o.resizes) << "job " << id;
      EXPECT_EQ(stats.checkpoints, o.checkpoints) << "job " << id;
      EXPECT_EQ(stats.commits, o.commits) << "job " << id;
      EXPECT_EQ(stats.finish_time, o.finish_time) << "job " << id;
    }
  }
}

TEST(FleetElastic, RewindBudgetBoundsRetainedStorage) {
  obs::Hub hub;
  const std::size_t k = 4;
  const RunSummary s = run_elastic(1, k, &hub);
  const FleetReport& r = s.report;
  ASSERT_TRUE(r.complete);
  ASSERT_GT(r.commits, 0u);
  EXPECT_GT(r.rewind_discards, 0u);
  EXPECT_GT(r.rewind_live_bytes, 0u);
  EXPECT_LT(r.rewind_live_bytes, r.committed_bytes)
      << "retention must hold less than the keep-everything total";

  // The hard bound that lets a 10k-job fleet cap its storage: each job
  // retains at most k checkpoints, each at most a full at its widest
  // (2x grow in this mix).
  std::uint64_t cap = 0;
  for (const auto& j : elastic_mix(7)) cap += k * 2 * j.footprint_bytes;
  EXPECT_LE(r.rewind_live_bytes, cap);

  // The era-ladder guarantee, fleet-wide: the worst per-job rewind gap
  // stays inside its certified envelope at the final horizon.
  EXPECT_GT(r.rewind_max_gap_s, 0.0);
  EXPECT_LE(r.rewind_max_gap_s, r.rewind_gap_bound_s);

  // Telemetry: resize counter (which also counts rewind-induced reverts)
  // and retention gauges mirror the report.
  const obs::MetricsSnapshot snap = hub.metrics.snapshot();
  EXPECT_GE(snap.counter_or_zero(on::kFleetResizes), r.resizes);
  EXPECT_GT(snap.counter_or_zero(on::kFleetResizes), 0u);
  EXPECT_EQ(snap.gauge_or(on::kFleetRewindLiveBytes, -1.0),
            double(r.rewind_live_bytes));
  EXPECT_EQ(snap.gauge_or(on::kFleetRewindDiscards, -1.0),
            double(r.rewind_discards));
  EXPECT_EQ(snap.gauge_or(on::kFleetRewindMaxGapSeconds, -1.0),
            r.rewind_max_gap_s);
}

TEST(FleetElastic, DisabledBudgetReportsNoRetention) {
  const RunSummary s = run_elastic(1, 0);
  ASSERT_TRUE(s.report.complete);
  EXPECT_GT(s.report.resizes, 0u);
  EXPECT_EQ(s.report.rewind_discards, 0u);
  EXPECT_EQ(s.report.rewind_live_bytes, 0u);
  EXPECT_EQ(s.report.rewind_max_gap_s, 0.0);
}

TEST(FleetElastic, ValidatesResizeLists) {
  auto jobs = small_mix(7);
  jobs[0].resizes = {{50.0, 2.0}, {40.0, 0.5}};  // not ascending
  EXPECT_THROW(
      FleetScheduler(small_fleet_config(1, 1), jobs, QosPolicy{}),
      CheckError);
  jobs[0].resizes = {{50.0, -1.0}};  // nonpositive factor
  EXPECT_THROW(
      FleetScheduler(small_fleet_config(1, 1), jobs, QosPolicy{}),
      CheckError);
}

}  // namespace
}  // namespace aic::fleet
