// aic_lint analyzer: lexer behaviour on the constructs that defeat the
// grep-based scan, the rule catalog against the fixture corpus (one true
// positive AND one true negative per rule), hostile-input totality, the
// suppression machinery, and a self-run proving the real tree is clean
// against its checked-in baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/lexer.h"
#include "common/check.h"
#include "obs/json.h"

namespace aic::analysis {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexer: the constructs the old sed/grep scan got wrong.

bool has_identifier(const LexedFile& f, std::string_view name) {
  return std::any_of(f.tokens.begin(), f.tokens.end(), [&](const Token& t) {
    return t.kind == TokenKind::kIdentifier && t.text == name;
  });
}

TEST(Lexer, StringAndCommentContentIsOpaque) {
  const LexedFile f = lex(
      "const char* a = \"abort() inside a string\";\n"
      "// abort() inside a line comment\n"
      "/* abort() inside a block comment */\n"
      "int after = 1;\n");
  EXPECT_FALSE(has_identifier(f, "abort"));
  EXPECT_TRUE(has_identifier(f, "after"));
  EXPECT_TRUE(f.errors.empty());
}

TEST(Lexer, SlashesInsideStringDoNotTruncateTheLine) {
  // The classic scan_code false negative: sed's //-strip ate the call.
  const LexedFile f = lex("const char* u = \"http://x\"; abort();\n");
  EXPECT_TRUE(has_identifier(f, "abort"));
}

TEST(Lexer, RawStringSwallowsCommentAndQuoteMarkers) {
  const LexedFile f =
      lex("const char* r = R\"d(has \" and // and */ inside)d\"; int tail;\n");
  EXPECT_FALSE(has_identifier(f, "has"));
  EXPECT_TRUE(has_identifier(f, "tail"));
  EXPECT_TRUE(f.errors.empty());
}

TEST(Lexer, BackslashSpliceKeepsLineNumbers) {
  const LexedFile f = lex("int a\\\n_b = 1;\nint second = 2;\n");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens[1].text, "a_b");  // spliced into one identifier
  bool saw_second = false;
  for (const Token& t : f.tokens) {
    if (t.text == "second") {
      saw_second = true;
      EXPECT_EQ(t.line, 3);  // physical line, despite the splice above
    }
  }
  EXPECT_TRUE(saw_second);
}

TEST(Lexer, IncludeTargetsRecordAngledVersusQuoted) {
  const LexedFile f = lex(
      "#include <vector>\n"
      "#include \"delta/page_delta.h\"  // trailing comment\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "vector");
  EXPECT_TRUE(f.includes[0].angled);
  EXPECT_EQ(f.includes[1].path, "delta/page_delta.h");
  EXPECT_FALSE(f.includes[1].angled);
  EXPECT_EQ(f.includes[1].line, 2);
}

TEST(Lexer, DirectiveBodyHonoursStringsAndComments) {
  // The "//" lives inside the #error string: the next line must survive.
  const LexedFile f = lex("#error \"see http://docs\"\nint survivor = 1;\n");
  EXPECT_TRUE(has_identifier(f, "survivor"));
}

TEST(Lexer, HostileInputsAreTotal) {
  const char* hostile[] = {
      "/* never closed",
      "\"runs off the end",
      "R\"x(never closed",
      "R\"way too long a delimiter goes here(x)\"",
      "'a",
      "int x = 1; \\",
      "\x01\x02\x7f\xfe\xff",
  };
  for (const char* src : hostile) {
    const LexedFile f = lex(src);  // must not throw or hang
    (void)f;
  }
  EXPECT_EQ(lex("/* never closed").errors.size(), 1u);
  EXPECT_EQ(lex("/* never closed").errors[0].message,
            "unterminated block comment");
}

// ---------------------------------------------------------------------------
// Analyzer unit behaviour on synthetic files.

Analysis analyze_one(std::string path, std::string content) {
  return analyze({{std::move(path), std::move(content)}}, Baseline{});
}

int count_rule(const Analysis& a, std::string_view rule,
               bool unsuppressed_only = false) {
  int n = 0;
  for (const Finding& f : a.findings) {
    if (f.rule == rule && !(unsuppressed_only && f.suppressed)) ++n;
  }
  return n;
}

TEST(Analyzer, StringLiteralNamedLikeACallIsNotFlagged) {
  // The real-tree false positive that motivated the token engine:
  // a histogram label containing `time (s)`.
  const Analysis a = analyze_one(
      "src/sim/report.cc", "void f(H& h) { h.observe(\"chunk time (s)\"); }\n");
  EXPECT_EQ(a.unsuppressed, 0);
}

TEST(Analyzer, EqDeleteIsNotADeallocation) {
  const Analysis a = analyze_one(
      "src/mem/pin.h", "struct P { P(const P&) = delete; };\n");
  EXPECT_EQ(count_rule(a, "own-new-delete"), 0);
}

TEST(Analyzer, CheckErrorFamilyIsTransitiveAcrossFiles) {
  const Analysis a = analyze(
      {{"src/common/err_a.h", "class ErrA : public CheckError {};\n"},
       {"src/delta/err_b.h", "class ErrB : public ErrA {};\n"},
       {"src/delta/use.cc", "void f() { throw ErrB(\"x\"); }\n"}},
      Baseline{});
  EXPECT_EQ(count_rule(a, "exc-throw-type"), 0);
}

TEST(Analyzer, InlineAllowCoversTheNextLine) {
  const Analysis a = analyze_one("src/mem/f.cc",
                                 "void f() {\n"
                                 "  // aic-lint: allow(abort-exit): test\n"
                                 "  abort();\n"
                                 "}\n");
  ASSERT_EQ(count_rule(a, "abort-exit"), 1);
  EXPECT_EQ(a.unsuppressed, 0);
  EXPECT_EQ(a.suppressed_inline, 1);
}

TEST(Analyzer, InlineAllowForADifferentRuleDoesNotSuppress) {
  const Analysis a = analyze_one(
      "src/mem/f.cc",
      "void f() { abort(); }  // aic-lint: allow(printf-family): wrong rule\n");
  EXPECT_EQ(count_rule(a, "abort-exit", /*unsuppressed_only=*/true), 1);
}

TEST(Analyzer, BaselineSuppressesByFingerprintAndReportsStale) {
  Baseline b;
  b.entries.push_back({"abort-exit", "src/mem/f.cc", "abort", "legacy"});
  b.entries.push_back({"abort-exit", "src/mem/gone.cc", "abort", "fixed"});
  const Analysis a =
      analyze({{"src/mem/f.cc", "void f() { abort(); }\n"}}, b);
  EXPECT_EQ(a.unsuppressed, 0);
  EXPECT_EQ(a.suppressed_baseline, 1);
  ASSERT_EQ(a.stale.size(), 1u);  // the entry matching nothing must surface
  EXPECT_EQ(a.stale[0].path, "src/mem/gone.cc");
  EXPECT_FALSE(a.clean());  // stale entries keep the run red
}

TEST(Baseline, JsonRoundTripsAndRejectsHostileInput) {
  Baseline b;
  b.entries.push_back({"layer-edge", "src/a/b.h", "a->c:c/d.h", "why"});
  const Baseline back = baseline_from_json(baseline_to_json(b));
  ASSERT_EQ(back.entries.size(), 1u);
  EXPECT_EQ(back.entries[0].rule, "layer-edge");
  EXPECT_EQ(back.entries[0].fingerprint, "a->c:c/d.h");
  EXPECT_THROW(baseline_from_json("{\"schema\": \"aic-lint-baseline-v1\","),
               CheckError);
  EXPECT_THROW(baseline_from_json("{\"schema\": \"other\", "
                                  "\"suppressions\": []}"),
               CheckError);
  EXPECT_THROW(baseline_from_json("[]"), CheckError);
}

TEST(Analyzer, FindingsJsonIsParseable) {
  const Analysis a = analyze_one(
      "src/mem/f.cc", "void f() { abort(); /* \"hostile\\\" label */ }\n");
  const obs::JsonValue doc = obs::json_parse(analysis_to_json(a));
  EXPECT_EQ(doc.at("schema").str, "aic-lint-v1");
  EXPECT_EQ(doc.at("findings").array.size(), 1u);
}

// ---------------------------------------------------------------------------
// Fixture corpus: one true positive and one true negative per rule.

std::vector<SourceFile> load_tree(const fs::path& root) {
  std::vector<SourceFile> files;
  for (const char* sub : {"src", "bench", "tools"}) {
    std::error_code ec;
    const fs::path dir = root / sub;
    if (!fs::is_directory(dir, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      const std::string ext = entry.path().extension().string();
      if (!entry.is_regular_file() || (ext != ".cc" && ext != ".h")) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream os;
      os << in.rdbuf();
      files.push_back(
          {fs::relative(entry.path(), root).generic_string(), os.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

int count_at(const Analysis& a, std::string_view rule, std::string_view path) {
  int n = 0;
  for (const Finding& f : a.findings) {
    if (f.rule == rule && f.path == path) ++n;
  }
  return n;
}

struct RuleFixture {
  const char* rule;
  const char* tp;  // file with >= 1 finding of `rule`
  const char* tn;  // file with 0 findings of `rule`
};

constexpr RuleFixture kRuleFixtures[] = {
    {"own-new-delete", "src/mem/tp_own_new_delete.cc",
     "src/mem/tn_own_new_delete.cc"},
    {"own-new-delete", "src/mem/tp_own_new_delete.cc",
     "src/common/tn_own_new_delete.cc"},  // module exemption
    {"include-iostream", "src/model/tp_include_iostream.cc",
     "src/model/tn_include_iostream.cc"},
    {"printf-family", "src/model/tp_printf_family.cc",
     "src/model/tn_printf_family.cc"},
    {"abort-exit", "src/control/tp_abort_exit.cc",
     "src/control/tn_abort_exit.cc"},
    {"clock-gateway", "src/delta/tp_clock_gateway.cc",
     "src/obs/tn_clock_gateway.cc"},  // obs/ is the gateway
    {"overlap-memcpy", "src/delta/tp_overlap_memcpy.cc",
     "src/delta/tn_overlap_memcpy.cc"},
    {"overlap-memcpy", "src/delta/tp_overlap_memcpy.cc",
     "src/model/tn_overlap_memcpy.cc"},  // layer scoping
    {"det-entropy", "src/workload/tp_det_entropy.cc",
     "src/workload/tn_det_entropy.cc"},
    {"det-entropy", "src/workload/tp_det_entropy.cc",
     "src/common/rng.cc"},  // the entropy gateway itself
    {"det-clock", "src/sim/tp_det_clock.cc", "src/sim/tn_det_clock.cc"},
    {"det-clock", "src/sim/tp_det_clock.cc",
     "src/obs/clock.cc"},  // the clock gateway itself
    {"det-env", "src/control/tp_det_env.cc", "src/control/tn_det_env.cc"},
    {"exc-catch-all", "src/mem/tp_exc_catch_all.cc",
     "src/mem/tn_exc_catch_all.cc"},
    {"exc-catch-value", "src/xfer/tp_exc_catch_value.cc",
     "src/xfer/tn_exc_catch_value.cc"},
    {"exc-throw-type", "src/storage/tp_exc_throw_type.cc",
     "src/storage/tn_exc_throw_type.cc"},
    {"obs-name-literal", "src/fleet/tp_obs_name_literal.cc",
     "src/fleet/tn_obs_name_literal.cc"},
    {"obs-name-literal", "src/fleet/tp_obs_name_literal.cc",
     "src/obs/tn_obs_name_literal.cc"},  // obs/ owns the name constants
    {"layer-edge", "src/model/tp_layer_edge.h", "src/delta/tn_layer_edge.h"},
    {"layer-cycle", "src/ckpt/tp_layer_cycle.h", "src/delta/tn_layer_edge.h"},
    {"lex-error", "src/trace/tp_lex_error.cc", "src/trace/tn_lex_error.cc"},
};

fs::path fixture_root(const char* sub) {
  return fs::path(AIC_SOURCE_DIR) / "tests" / "analysis" / sub;
}

TEST(Corpus, EveryRuleHasATruePositiveAndATrueNegative) {
  const Analysis a = analyze(load_tree(fixture_root("corpus")), Baseline{});
  for (const RuleFixture& fx : kRuleFixtures) {
    EXPECT_GE(count_at(a, fx.rule, fx.tp), 1)
        << fx.rule << " did not fire in " << fx.tp;
    EXPECT_EQ(count_at(a, fx.rule, fx.tn), 0)
        << fx.rule << " misfired in " << fx.tn;
  }
}

TEST(Corpus, OnlyTruePositiveFilesHaveUnsuppressedFindings) {
  const Analysis a = analyze(load_tree(fixture_root("corpus")), Baseline{});
  EXPECT_EQ(a.unsuppressed, 26);  // pinned: edit fixtures -> update this
  for (const Finding& f : a.findings) {
    if (!f.suppressed) {
      EXPECT_NE(f.path.find("/tp_"), std::string::npos)
          << "unexpected finding in non-TP file: " << f.path << ":" << f.line
          << " " << f.rule;
    }
  }
}

TEST(Corpus, LayerCycleIsReportedOncePerComponent) {
  const Analysis a = analyze(load_tree(fixture_root("corpus")), Baseline{});
  int cycles = 0;
  for (const Finding& f : a.findings) {
    if (f.rule != "layer-cycle") continue;
    ++cycles;
    EXPECT_EQ(f.fingerprint, "ckpt+storage");
    EXPECT_EQ(f.path, "src/ckpt/tp_layer_cycle.h");  // smallest witness file
  }
  EXPECT_EQ(cycles, 1);
}

TEST(Corpus, InlineAllowFixtureIsSuppressedNotDropped) {
  const Analysis a = analyze(load_tree(fixture_root("corpus")), Baseline{});
  bool saw = false;
  for (const Finding& f : a.findings) {
    if (f.path != "src/failure/tn_inline_allow.cc") continue;
    saw = true;
    EXPECT_EQ(f.rule, "abort-exit");
    EXPECT_TRUE(f.suppressed);
    EXPECT_EQ(f.suppressed_by, "inline");
  }
  EXPECT_TRUE(saw);  // the finding must still appear in the report
}

TEST(Corpus, HostileTreeYieldsOnlyLexErrors) {
  const Analysis a = analyze(load_tree(fixture_root("hostile")), Baseline{});
  EXPECT_GE(a.unsuppressed, 5);
  for (const Finding& f : a.findings) {
    EXPECT_EQ(f.rule, "lex-error") << f.path << ":" << f.line;
  }
  EXPECT_FALSE(a.clean());
}

// ---------------------------------------------------------------------------
// Self-run: the real tree must be clean against its checked-in baseline,
// with no stale entries — the same gate scripts/verify.sh enforces.

TEST(SelfRun, RealTreeIsCleanAgainstCheckedInBaseline) {
  const fs::path root(AIC_SOURCE_DIR);
  std::ifstream in(root / ".aic-lint-baseline.json", std::ios::binary);
  ASSERT_TRUE(in) << "checked-in baseline missing";
  std::ostringstream os;
  os << in.rdbuf();
  const Baseline baseline = baseline_from_json(os.str());

  const std::vector<SourceFile> files = load_tree(root);
  ASSERT_GE(files.size(), 100u);  // sanity: we really scanned the tree
  const Analysis a = analyze(files, baseline);

  std::string report;
  for (const Finding& f : a.findings) {
    if (f.suppressed) continue;
    report += f.path + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
              f.message + "\n";
  }
  for (const BaselineEntry& e : a.stale) {
    report += "stale baseline entry: " + e.rule + " " + e.path + " (" +
              e.fingerprint + ")\n";
  }
  EXPECT_TRUE(a.clean()) << report;
}

}  // namespace
}  // namespace aic::analysis
