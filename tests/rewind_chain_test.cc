// Round-trip tests for rewind-window retention on CheckpointChain: chains
// pruned by the discard schedule must stay fsck-clean (invariants I1–I11,
// with pruned gaps downgraded to the kPrunedGap warning) and must restore
// byte-exact from EVERY surviving checkpoint — including chains whose
// mid-chain files were re-anchored to fulls after a discard. A fuzz loop
// mixes captures with failure rollbacks across random budgets to shake the
// same guarantees out of the non-steady paths.
#include <gtest/gtest.h>

#include <map>

#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "common/rng.h"
#include "mem/address_space.h"
#include "mem/snapshot.h"
#include "verify/chain_verifier.h"

namespace aic::ckpt {
namespace {

/// Reference state at one checkpoint: what restore_at(sequence) must
/// reproduce bit for bit.
struct Reference {
  mem::Snapshot memory;
  Bytes cpu;
  double app_time = 0.0;
};

void evolve(mem::AddressSpace& space, Rng& rng) {
  space.protect_all();
  const int edits = 1 + int(rng.uniform_u64(6));
  for (int e = 0; e < edits; ++e) {
    const mem::PageId id = rng.uniform_u64(24);
    if (!space.contains(id)) {
      space.allocate(id);
    } else if (rng.bernoulli(0.1)) {
      space.free_page(id);
    } else {
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        const std::size_t off = rng.uniform_u64(b.size() - 16);
        for (std::size_t i = 0; i < 16; ++i)
          b[off + i] = std::uint8_t(rng());
      });
    }
  }
}

bool snapshots_equal(const mem::Snapshot& a, const mem::Snapshot& b) {
  const auto ids = a.page_ids();
  if (ids != b.page_ids()) return false;
  for (mem::PageId id : ids) {
    const ByteSpan pa = a.page_bytes(id);
    const ByteSpan pb = b.page_bytes(id);
    if (!std::equal(pa.begin(), pa.end(), pb.begin(), pb.end())) return false;
  }
  return true;
}

/// Runs the verifier over the chain's serialized records (so I1 framing
/// checks execute too) and returns the report.
verify::Report fsck(const CheckpointChain& chain) {
  std::vector<Bytes> records;
  records.reserve(chain.files().size());
  for (const CheckpointFile& f : chain.files()) records.push_back(f.serialize());
  return verify::ChainVerifier().verify_serialized(records);
}

TEST(RewindChain, PrunedChainStaysFsckClean) {
  Rng rng(0xC0DE);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  CheckpointChain::Config cfg;
  cfg.full_period = 4;
  cfg.rewind_budget = 5;
  CheckpointChain chain(cfg);
  for (int i = 0; i < 40; ++i) {
    chain.capture(space, {}, double(i + 1));
    ASSERT_LE(chain.files().size(), cfg.rewind_budget);
    // The chain's files and the window's ledger must agree exactly.
    std::vector<std::uint64_t> seqs;
    for (const CheckpointFile& f : chain.files()) seqs.push_back(f.sequence);
    ASSERT_EQ(seqs, chain.rewind().live_sequences());
    const verify::Report report = fsck(chain);
    ASSERT_EQ(report.error_count(), 0u)
        << "step " << i << ": " << report.summary();
    ASSERT_TRUE(report.replay_complete);
    evolve(space, rng);
  }
  // Pruning definitely happened and announced itself to the verifier.
  EXPECT_GT(chain.rewind().discards(), 0u);
  bool saw_pruned_gap = false;
  for (const verify::Diagnostic& d : fsck(chain).diagnostics)
    saw_pruned_gap |= d.code == verify::CheckCode::kPrunedGap;
  EXPECT_TRUE(saw_pruned_gap);
}

TEST(RewindChain, RestoresByteExactFromEverySurvivor) {
  Rng rng(0xBEEF);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  for (mem::PageId id = 0; id < 16; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  CheckpointChain::Config cfg;
  cfg.full_period = 3;
  cfg.rewind_budget = 4;
  CheckpointChain chain(cfg);
  std::map<std::uint64_t, Reference> refs;
  for (int i = 0; i < 30; ++i) {
    Bytes cpu = {std::uint8_t(i), std::uint8_t(i * 3)};
    const double t = double(i + 1);
    chain.capture(space, cpu, t);
    refs[chain.files().back().sequence] =
        Reference{mem::Snapshot::capture(space), cpu, t};
    for (std::uint64_t seq : chain.rewind().live_sequences()) {
      ASSERT_TRUE(refs.contains(seq));
      const Reference& ref = refs.at(seq);
      for (auto mode : {RestartEngine::Mode::kInPlace,
                        RestartEngine::Mode::kOutOfPlace}) {
        RestartEngine::Restored got = chain.restore_at(seq, mode);
        ASSERT_TRUE(snapshots_equal(got.memory, ref.memory))
            << "step " << i << " seq " << seq;
        ASSERT_EQ(got.cpu_state, ref.cpu);
        ASSERT_DOUBLE_EQ(got.app_time, ref.app_time);
        ASSERT_EQ(got.sequence, seq);
      }
    }
    evolve(space, rng);
  }
}

// With full_period = 0 only the very first capture is full, so every prune
// of a checkpoint with a delta successor must re-anchor that successor —
// the hard path: the replacement full is synthesized by replaying the
// victim before discarding it.
TEST(RewindChain, MidChainReanchoringKeepsDeltasDecodable) {
  Rng rng(0xA11CE);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  CheckpointChain::Config cfg;
  cfg.full_period = 0;
  cfg.rewind_budget = 4;
  CheckpointChain chain(cfg);
  std::map<std::uint64_t, Reference> refs;
  bool saw_reanchor = false;
  for (int i = 0; i < 25; ++i) {
    chain.capture(space, {}, double(i + 1));
    refs[chain.files().back().sequence] =
        Reference{mem::Snapshot::capture(space), {}, double(i + 1)};
    if (chain.last_prune().has_value() &&
        chain.last_prune()->reanchored_sequence.has_value()) {
      saw_reanchor = true;
    }
    const verify::Report report = fsck(chain);
    ASSERT_EQ(report.error_count(), 0u)
        << "step " << i << ": " << report.summary();
    for (std::uint64_t seq : chain.rewind().live_sequences()) {
      RestartEngine::Restored got = chain.restore_at(seq);
      ASSERT_TRUE(snapshots_equal(got.memory, refs.at(seq).memory))
          << "step " << i << " seq " << seq;
    }
    evolve(space, rng);
  }
  EXPECT_TRUE(saw_reanchor);
  // Re-anchoring planted fulls beyond the first file.
  int fulls = 0;
  for (const CheckpointFile& f : chain.files())
    fulls += f.kind == CheckpointKind::kFull;
  EXPECT_GT(fulls, 1);
}

TEST(RewindChain, RollbackKeepsWindowAndChainInSync) {
  Rng rng(0x9A11);
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  CheckpointChain::Config cfg;
  cfg.full_period = 3;
  cfg.rewind_budget = 5;
  CheckpointChain chain(cfg);
  std::map<std::uint64_t, Reference> refs;
  for (int i = 0; i < 20; ++i) {
    chain.capture(space, {}, double(i + 1));
    refs[chain.files().back().sequence] =
        Reference{mem::Snapshot::capture(space), {}, double(i + 1)};
    evolve(space, rng);
  }
  // Fail back to the second-oldest survivor.
  const auto live = chain.rewind().live_sequences();
  ASSERT_GE(live.size(), 2u);
  const std::uint64_t target = live[1];
  chain.rollback_to(target);
  ASSERT_EQ(chain.files().back().sequence, target);
  std::vector<std::uint64_t> seqs;
  for (const CheckpointFile& f : chain.files()) seqs.push_back(f.sequence);
  ASSERT_EQ(seqs, chain.rewind().live_sequences());
  RestartEngine::Restored got = chain.restore();
  ASSERT_TRUE(snapshots_equal(got.memory, refs.at(target).memory));

  // Resume from the restore point: re-trodden application time must keep
  // the chain consistent and fsck-clean.
  mem::AddressSpace resumed;
  for (mem::PageId id : got.memory.page_ids()) {
    resumed.allocate(id);
    resumed.mutate(id, [&](std::span<std::uint8_t> b) {
      const ByteSpan src = got.memory.page_bytes(id);
      std::copy(src.begin(), src.end(), b.begin());
    });
  }
  double t = got.app_time;
  for (int i = 0; i < 15; ++i) {
    evolve(resumed, rng);
    chain.capture(resumed, {}, t += 1.0);
    const verify::Report report = fsck(chain);
    ASSERT_EQ(report.error_count(), 0u)
        << "post-rollback step " << i << ": " << report.summary();
    ASSERT_TRUE(chain.restore().memory.equals_space(resumed));
  }
}

// Fuzz: random budgets, random full cadences, captures interleaved with
// rollbacks — every step must hold the fsck and byte-exact-restore
// guarantees at once.
TEST(RewindChain, FuzzPrunedChainsSurviveCapturesAndRollbacks) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(0xF022 + seed * 131);
    mem::AddressSpace space;
    space.allocate_range(0, 24);
    CheckpointChain::Config cfg;
    cfg.full_period = std::uint32_t(rng.uniform_u64(5));  // 0..4
    cfg.rewind_budget = 2 + rng.uniform_u64(5);           // 2..6
    cfg.correcting = rng.bernoulli(0.5);
    CheckpointChain chain(cfg);
    std::map<std::uint64_t, Reference> refs;
    double t = 0.0;
    for (int step = 0; step < 60; ++step) {
      if (chain.rewind().size() > 1 && rng.bernoulli(0.1)) {
        const auto live = chain.rewind().live_sequences();
        const std::uint64_t target = live[rng.uniform_u64(live.size())];
        chain.rollback_to(target);
        const Reference& ref = refs.at(target);
        t = ref.app_time;
        // Resume the space from the restored image.
        mem::AddressSpace fresh;
        for (mem::PageId id : ref.memory.page_ids()) {
          fresh.allocate(id);
          fresh.mutate(id, [&](std::span<std::uint8_t> b) {
            const ByteSpan src = ref.memory.page_bytes(id);
            std::copy(src.begin(), src.end(), b.begin());
          });
        }
        space = std::move(fresh);
        continue;
      }
      evolve(space, rng);
      chain.capture(space, {}, t += rng.uniform(0.2, 2.0));
      refs[chain.files().back().sequence] =
          Reference{mem::Snapshot::capture(space), {}, t};
      ASSERT_LE(chain.files().size(), cfg.rewind_budget);
      const verify::Report report = fsck(chain);
      ASSERT_EQ(report.error_count(), 0u)
          << "seed " << seed << " step " << step << ": " << report.summary();
      for (std::uint64_t seq : chain.rewind().live_sequences()) {
        ASSERT_TRUE(
            snapshots_equal(chain.restore_at(seq).memory, refs.at(seq).memory))
            << "seed " << seed << " step " << step << " seq " << seq;
      }
    }
  }
}

TEST(RewindChain, BudgetZeroKeepsEveryFile) {
  Rng rng(0x0FF);
  mem::AddressSpace space;
  space.allocate_range(0, 8);
  CheckpointChain chain;  // rewind_budget defaults to 0
  for (int i = 0; i < 10; ++i) {
    chain.capture(space, {}, double(i + 1));
    evolve(space, rng);
  }
  EXPECT_EQ(chain.files().size(), 10u);
  EXPECT_FALSE(chain.rewind().active());
  EXPECT_FALSE(chain.last_prune().has_value());
}

}  // namespace
}  // namespace aic::ckpt
