// Tests for storage/: bandwidth accounting, local disk failure semantics,
// RAID-5 striping + parity reconstruction + rebuild, remote store.
#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "storage/storage.h"

namespace aic::storage {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

TEST(TransferSeconds, LinearInSize) {
  EXPECT_DOUBLE_EQ(transfer_seconds(1000, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(transfer_seconds(1000, 100.0, 2.0), 12.0);
  EXPECT_DOUBLE_EQ(transfer_seconds(0, 100.0), 0.0);
}

TEST(TransferSeconds, RejectsNonPositiveBandwidth) {
  EXPECT_THROW((void)transfer_seconds(1000, 0.0), CheckError);
  EXPECT_THROW((void)transfer_seconds(1000, -1.0), CheckError);
  EXPECT_THROW((void)transfer_seconds(0, 0.0), CheckError)
      << "zero bytes does not excuse a zero bandwidth";
}

TEST(TransferSeconds, RejectsNonFiniteParameters) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)transfer_seconds(1000, nan), CheckError);
  EXPECT_THROW((void)transfer_seconds(1000, inf), CheckError);
  EXPECT_THROW((void)transfer_seconds(1000, 100.0, nan), CheckError);
  EXPECT_THROW((void)transfer_seconds(1000, 100.0, inf), CheckError);
  EXPECT_THROW((void)transfer_seconds(1000, 100.0, -0.5), CheckError);
}

TEST(LocalDisk, PutGetEraseAccounting) {
  LocalDisk disk(100.0);
  Rng rng(1);
  Bytes data = random_bytes(rng, 500);
  const double t = disk.put("ckpt0", data);
  EXPECT_DOUBLE_EQ(t, 5.0);
  EXPECT_EQ(disk.stored_bytes(), 500u);
  auto back = disk.get("ckpt0");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  EXPECT_DOUBLE_EQ(disk.read_seconds("ckpt0"), 5.0);
  EXPECT_TRUE(disk.erase("ckpt0"));
  EXPECT_FALSE(disk.erase("ckpt0"));
  EXPECT_FALSE(disk.get("ckpt0").has_value());
}

TEST(LocalDisk, FailureMakesContentUnavailable) {
  LocalDisk disk(100.0);
  disk.put("a", {1, 2, 3});
  disk.fail();
  EXPECT_FALSE(disk.available());
  EXPECT_FALSE(disk.get("a").has_value());
  EXPECT_THROW((void)disk.put("b", {4}), CheckError);
  disk.replace();
  EXPECT_TRUE(disk.available());
  EXPECT_FALSE(disk.get("a").has_value()) << "replacement disk is empty";
}

class Raid5Fixture : public ::testing::TestWithParam<std::size_t> {
 protected:
  static constexpr std::size_t kUnit = 64;  // small stripes exercise layout
};

TEST_P(Raid5Fixture, RoundTripAllSizes) {
  Raid5Group g(GetParam(), 1000.0, kUnit);
  Rng rng(2);
  for (std::size_t size :
       {std::size_t(1), kUnit - 1, kUnit, kUnit + 1, 3 * kUnit,
        (GetParam() - 1) * kUnit, (GetParam() - 1) * kUnit + 7,
        10 * GetParam() * kUnit}) {
    Bytes data = random_bytes(rng, size);
    g.put("obj" + std::to_string(size), data);
    auto back = g.get("obj" + std::to_string(size));
    ASSERT_TRUE(back.has_value()) << "size " << size;
    EXPECT_EQ(*back, data) << "size " << size;
  }
}

TEST_P(Raid5Fixture, SurvivesAnySingleNodeLoss) {
  Rng rng(3);
  Bytes data = random_bytes(rng, 1000);
  for (std::size_t victim = 0; victim < GetParam(); ++victim) {
    Raid5Group g(GetParam(), 1000.0, kUnit);
    g.put("x", data);
    g.fail_node(victim);
    EXPECT_TRUE(g.available());
    auto back = g.get("x");
    ASSERT_TRUE(back.has_value()) << "victim " << victim;
    EXPECT_EQ(*back, data) << "victim " << victim;
  }
}

TEST_P(Raid5Fixture, RebuildRestoresRedundancy) {
  Rng rng(4);
  Bytes data = random_bytes(rng, 2000);
  Raid5Group g(GetParam(), 1000.0, kUnit);
  g.put("x", data);
  g.fail_node(1);
  EXPECT_GT(g.rebuild_node(1), 0u);
  // Redundancy is back: lose a different node and still read.
  g.fail_node(0);
  auto back = g.get("x");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, Raid5Fixture,
                         ::testing::Values(3, 4, 5, 8));

TEST(Raid5, TwoNodeLossUnavailable) {
  Raid5Group g(4, 1000.0, 64);
  g.put("x", {1, 2, 3});
  g.fail_node(0);
  g.fail_node(2);
  EXPECT_FALSE(g.available());
  EXPECT_FALSE(g.get("x").has_value());
}

TEST(Raid5, DegradedWriteThenRecoverOtherNode) {
  // Write while node 2 is down: the object has no redundancy for stripes
  // whose parity or data lived there, but reading with only node 2 down
  // must still work (reconstruction path).
  Rng rng(5);
  Bytes data = random_bytes(rng, 777);
  Raid5Group g(4, 1000.0, 64);
  g.fail_node(2);
  g.put("x", data);
  auto back = g.get("x");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Raid5, TwoNodeLossGetIsNulloptNeverCrashes) {
  // Exhaustive pairs: any two members down must degrade every read to
  // nullopt (RAID-5 tolerates exactly one loss), never throw or crash.
  Rng rng(7);
  Bytes data = random_bytes(rng, 513);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      Raid5Group g(4, 1000.0, 64);
      g.put("x", data);
      g.fail_node(a);
      EXPECT_EQ(*g.get("x"), data) << "one loss must reconstruct";
      g.fail_node(b);
      EXPECT_FALSE(g.available());
      EXPECT_FALSE(g.get("x").has_value());
      EXPECT_FALSE(g.get("missing").has_value());
    }
  }
}

TEST(Raid5, RebuildRejectedWhileAnotherMemberDown) {
  Raid5Group g(4, 1000.0, 64);
  g.put("x", Bytes(300, 9));
  g.fail_node(1);
  g.fail_node(3);
  // Parity reconstruction needs every other member healthy: rebuilding
  // either victim with the other still down must be refused, not silently
  // produce garbage shares.
  EXPECT_THROW((void)g.rebuild_node(1), CheckError);
  EXPECT_THROW((void)g.rebuild_node(3), CheckError);
  EXPECT_TRUE(g.is_node_failed(1));
  EXPECT_TRUE(g.is_node_failed(3));
  EXPECT_THROW((void)g.rebuild_node(0), CheckError)
      << "rebuilding a healthy node is always a bug";
}

TEST(Raid5, StoredBytesConsistentAfterEraseUnderDegradedMode) {
  Rng rng(8);
  Raid5Group g(4, 1000.0, 64);
  g.put("a", random_bytes(rng, 400));
  g.put("b", random_bytes(rng, 700));
  const std::uint64_t healthy_total = g.stored_bytes();
  g.fail_node(2);  // drops node 2's shares of both objects
  const std::uint64_t degraded_total = g.stored_bytes();
  EXPECT_LT(degraded_total, healthy_total);

  // Erasing one object under degraded mode removes exactly its surviving
  // shares; the other object stays readable via reconstruction.
  EXPECT_TRUE(g.erase("a"));
  const std::uint64_t after_erase = g.stored_bytes();
  EXPECT_LT(after_erase, degraded_total);
  EXPECT_FALSE(g.get("a").has_value());
  EXPECT_TRUE(g.get("b").has_value());
  EXPECT_FALSE(g.erase("a")) << "double erase reports absence";
  EXPECT_EQ(g.stored_bytes(), after_erase);

  // Erasing the last object empties the accounting entirely.
  EXPECT_TRUE(g.erase("b"));
  EXPECT_EQ(g.stored_bytes(), 0u);
}

TEST(Raid5, MinimumGroupSizeEnforced) {
  EXPECT_THROW(Raid5Group(2, 100.0), CheckError);
}

TEST(Raid5, WriteTimeCoversParityOverhead) {
  Raid5Group g(5, 1000.0, 100);
  // 400 data bytes = 1 stripe of 4x100 + 100 parity => 500 bytes written.
  const double t = g.put("x", Bytes(400, 7));
  EXPECT_DOUBLE_EQ(t, 0.5);
}

TEST(RemoteStore, PutGet) {
  RemoteStore store(2.0 * kMB);
  Rng rng(6);
  Bytes data = random_bytes(rng, 1 * kMiB);
  const double t = store.put("ckpt", data);
  EXPECT_NEAR(t, double(kMiB) / (2.0 * kMB), 1e-12);
  EXPECT_EQ(*store.get("ckpt"), data);
  EXPECT_TRUE(store.available());
}

TEST(RemoteStore, ReadSecondsMissingThrows) {
  RemoteStore store(1000.0);
  EXPECT_THROW((void)store.read_seconds("nope"), CheckError);
}

}  // namespace
}  // namespace aic::storage
