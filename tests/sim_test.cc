// Validation tests for sim/: Monte-Carlo walks of the Markov chains agree
// with the analytic solver, the independent L2L3 event simulation agrees
// with the chain built from the paper's description, and the full-stack
// failure simulator recovers byte-exact state under injected failures.
#include <gtest/gtest.h>

#include <cmath>

#include "failure/failure.h"
#include "model/interval_models.h"
#include "model/moody.h"
#include "sim/chain_sim.h"
#include "sim/failure_sim.h"

namespace aic::sim {
namespace {

using model::IntervalParams;
using model::MarkovChain;
using model::SystemProfile;

TEST(ChainSim, WalkMatchesSolverOnToyChain) {
  MarkovChain m({0.01, 0.02});
  auto work = m.add_state(20.0, "work");
  auto rec1 = m.add_state(2.0, "rec1");
  auto rec2 = m.add_state(8.0, "rec2");
  m.set_success(work, MarkovChain::kDone);
  m.set_failure(work, 1, rec1);
  m.set_failure(work, 2, rec2);
  m.set_success(rec1, work);
  m.set_failure(rec1, 1, rec1);
  m.set_failure(rec1, 2, rec2);
  m.set_success(rec2, work);
  m.set_failure(rec2, 1, rec2);
  m.set_failure(rec2, 2, rec2);

  const double analytic = m.expected_time(work);
  RunningStats mc = simulate_chain(m, work, 20000, Rng(1));
  EXPECT_NEAR(mc.mean(), analytic, 4.0 * mc.ci95_halfwidth());
}

TEST(ChainSim, WalkMatchesSolverOnL2L3Chain) {
  auto sys = SystemProfile::coastal();
  // High rates so failures actually occur within the Monte-Carlo budget.
  sys.lambda = {5e-5, 4.5e-4, 1e-4};
  const double w = 2000.0;
  const auto p = IntervalParams::from_profile(sys);
  MarkovChain::StateId start;
  MarkovChain chain = model::make_l2l3_chain(sys, w, p, p, &start);

  const double analytic = chain.expected_time(start);
  RunningStats mc = simulate_chain(chain, start, 20000, Rng(2));
  EXPECT_NEAR(mc.mean(), analytic, 4.0 * mc.ci95_halfwidth());
}

TEST(ChainSim, IndependentEventSimMatchesChain) {
  // The hand-coded protocol simulation and the solver were written from
  // the same paper text but independently; they must agree.
  auto sys = SystemProfile::coastal();
  sys.lambda = {5e-5, 4.5e-4, 1e-4};
  for (double w : {1500.0, 3000.0, 8000.0}) {
    const double analytic =
        model::expected_interval_time(model::LevelCombo::kL2L3, sys, w);
    RunningStats mc = simulate_l2l3_interval(sys, w, 20000, Rng(3));
    EXPECT_NEAR(mc.mean(), analytic, 4.0 * mc.ci95_halfwidth())
        << "w = " << w;
  }
}

TEST(ChainSim, ZeroRateWalkIsDeterministic) {
  MarkovChain m({0.0});
  auto a = m.add_state(5.0);
  auto b = m.add_state(7.0);
  m.set_success(a, b);
  m.set_success(b, MarkovChain::kDone);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(simulate_chain_once(m, a, rng), 12.0);
}

TEST(ChainSim, MoodyChainSimulatesToo) {
  auto sys = SystemProfile::coastal();
  sys.lambda = {5e-5, 4.5e-4, 1e-4};
  // Validate the Moody period expectation via a direct interval check:
  // n1 = n2 = 0 degenerates to one blocking L3 segment with retry — build
  // that chain by hand and compare against moody_period_time.
  const double w = 3000.0;
  const double analytic = model::moody_period_time(sys, w, 0, 0);
  // Moody recovers a level-k failure from the level-k facility of the
  // previous period's L3 checkpoint at cost r_k.
  MarkovChain m({sys.lambda[0], sys.lambda[1], sys.lambda[2]});
  auto seg = m.add_state(w + sys.c[2]);
  auto rec1 = m.add_state(sys.r[0]);
  auto rec2 = m.add_state(sys.r[1]);
  auto rec3 = m.add_state(sys.r[2]);
  m.set_success(seg, MarkovChain::kDone);
  m.set_failure(seg, 1, rec1);
  m.set_failure(seg, 2, rec2);
  m.set_failure(seg, 3, rec3);
  for (auto rec : {rec1, rec2, rec3}) {
    m.set_success(rec, seg);
    m.set_failure(rec, 1, rec1);
    m.set_failure(rec, 2, rec2);
    m.set_failure(rec, 3, rec3);
  }
  EXPECT_NEAR(m.expected_time(seg), analytic, 1e-9 * analytic);
  RunningStats mc = simulate_chain(m, seg, 20000, Rng(5));
  EXPECT_NEAR(mc.mean(), analytic, 4.0 * mc.ci95_halfwidth());
}

// ---- failure module ----

TEST(Failure, SpecFromTotalSplitsLikeCoastal) {
  auto spec = failure::FailureSpec::from_total(1e-3);
  EXPECT_NEAR(spec.total(), 1e-3, 1e-15);
  EXPECT_NEAR(spec.lambda[1] / spec.total(), 0.75, 1e-12);
}

TEST(Failure, InterArrivalMeanMatchesRate) {
  failure::FailureInjector injector(failure::FailureSpec::from_total(0.01),
                                    Rng(6));
  RunningStats gaps;
  double prev = 0.0;
  for (int i = 0; i < 20000; ++i) {
    auto ev = injector.next_after(prev);
    gaps.add(ev.time - prev);
    prev = ev.time;
  }
  EXPECT_NEAR(gaps.mean(), 100.0, 3.0);
}

TEST(Failure, LevelFrequenciesMatchShares) {
  failure::FailureInjector injector(failure::FailureSpec::from_total(0.01),
                                    Rng(7));
  std::array<int, 3> counts{0, 0, 0};
  double t = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    auto ev = injector.next_after(t);
    t = ev.time;
    ++counts[std::size_t(ev.level - 1)];
  }
  EXPECT_NEAR(double(counts[1]) / n, 0.75, 0.01);
  EXPECT_NEAR(double(counts[0]) / n, 2.0 / 24.0, 0.01);
}

TEST(Failure, ZeroRateNeverFires) {
  failure::FailureInjector injector(failure::FailureSpec{}, Rng(8));
  auto ev = injector.next_after(10.0);
  EXPECT_TRUE(std::isinf(ev.time));
}

// ---- full-stack failure simulation ----

class FailureSimFixture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureSimFixture, RecoversByteExactUnderFailures) {
  FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.costs = control::CostModel();  // fast default bandwidths
  // Aggressive rates so several failures hit within the short run.
  cfg.failures = failure::FailureSpec::from_total(0.04);
  cfg.checkpoint_interval = 10.0;
  cfg.seed = GetParam();
  FailureSimResult res = run_failure_sim(cfg);
  EXPECT_TRUE(res.final_state_verified)
      << "memory diverged after " << res.restores << " restores";
  EXPECT_GT(res.total_failures(), 0)
      << "P(no failure) < 0.3% at this rate — check the injector";
  EXPECT_GT(res.turnaround, res.base_time);
  EXPECT_GT(res.checkpoints, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSimFixture,
                         ::testing::Values(11, 22, 33, 44));

TEST(FailureSim, NoFailuresMeansMinimalOverheadAndVerifies) {
  FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kSphinx3;
  cfg.workload_scale = 0.125;
  cfg.failures = failure::FailureSpec{};  // none
  cfg.checkpoint_interval = 20.0;
  FailureSimResult res = run_failure_sim(cfg);
  EXPECT_TRUE(res.final_state_verified);
  EXPECT_EQ(res.total_failures(), 0);
  EXPECT_EQ(res.restores, 0);
  // Only the c1 halts separate turnaround from base time.
  EXPECT_LT(res.net2(), 1.05);
  EXPECT_GE(res.net2(), 1.0);
}

TEST(FailureSim, HigherRateMeansLongerTurnaround) {
  auto run_with = [](double rate) {
    FailureSimConfig cfg;
    cfg.benchmark = workload::SpecBenchmark::kBzip2;
    cfg.workload_scale = 0.125;
    cfg.failures = failure::FailureSpec::from_total(rate);
    cfg.checkpoint_interval = 10.0;
    cfg.seed = 99;
    return run_failure_sim(cfg);
  };
  RunningStats low, high;
  for (int s = 0; s < 3; ++s) {
    auto cfg_seed = [&](double rate, std::uint64_t seed) {
      FailureSimConfig cfg;
      cfg.benchmark = workload::SpecBenchmark::kBzip2;
      cfg.workload_scale = 0.125;
      cfg.failures = failure::FailureSpec::from_total(rate);
      cfg.checkpoint_interval = 10.0;
      cfg.seed = seed;
      return run_failure_sim(cfg);
    };
    low.add(cfg_seed(0.002, 100 + s).turnaround);
    high.add(cfg_seed(0.05, 100 + s).turnaround);
  }
  (void)run_with;
  EXPECT_LT(low.mean(), high.mean());
}

TEST(FailureSim, XferEngineRecoversByteExactUnderFailures) {
  // The transfer-engine mode: L2/L3 placements are real chunked drains, so
  // failures strike mid-chunk and recovery runs against what actually
  // committed. The byte-exactness bar is unchanged.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    FailureSimConfig cfg;
    cfg.benchmark = workload::SpecBenchmark::kBzip2;
    cfg.workload_scale = 0.125;
    cfg.failures = failure::FailureSpec::from_total(0.04);
    cfg.checkpoint_interval = 10.0;
    cfg.seed = seed;
    cfg.use_transfer_engine = true;
    FailureSimResult res = run_failure_sim(cfg);
    EXPECT_TRUE(res.final_state_verified)
        << "seed " << seed << ": memory diverged after " << res.restores
        << " restores";
    EXPECT_GT(res.total_failures(), 0);
    EXPECT_GT(res.checkpoints, 3);
    EXPECT_GT(res.xfer_stats.chunks_sent, 0u);
    EXPECT_GT(res.xfer_stats.transfers_committed, 0u);
  }
}

TEST(FailureSim, XferEngineInterruptsDrainsOnSlowRemote) {
  // Slow L3 + frequent level-2 failures: some failure lands while a remote
  // drain is mid-flight, the drain is interrupted and later resumed, and
  // the run still verifies byte-exact.
  FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures.lambda = {0.0, 0.02, 0.0};
  cfg.costs.b3_bps = 50.0 * kKB;  // sluggish remote: drains lag failures
  cfg.checkpoint_interval = 10.0;
  cfg.seed = 1;
  cfg.use_transfer_engine = true;
  FailureSimResult res = run_failure_sim(cfg);
  EXPECT_TRUE(res.final_state_verified);
  EXPECT_GT(res.failures_by_level[1], 0);
  EXPECT_GT(res.xfer_stats.transfers_interrupted, 0u)
      << "a failure should have caught a drain mid-flight";
  EXPECT_GT(res.drains_resumed, 0);
}

TEST(FailureSim, Level3FailureForcesOlderRestorePoint) {
  // With only level-3 failures and slow L3 transfers, restores must come
  // from checkpoints whose remote copy had landed — the run still verifies.
  FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures.lambda = {0.0, 0.0, 0.01};
  cfg.costs.b3_bps = 200.0 * kKB;  // sluggish remote: transfers lag
  cfg.checkpoint_interval = 10.0;
  cfg.seed = 7;
  FailureSimResult res = run_failure_sim(cfg);
  EXPECT_TRUE(res.final_state_verified);
  EXPECT_GT(res.failures_by_level[2], 0);
}

}  // namespace
}  // namespace aic::sim
