// Unit tests for the common/ utilities: rng distributions, byte streams,
// statistics, and the dense linear solver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/crc32c.h"
#include "common/linalg.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace aic {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(AIC_CHECK(1 == 2), CheckError);
  try {
    AIC_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(9);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_u64(n)];
  for (auto c : counts) {
    EXPECT_NEAR(double(c), trials / double(n), 5.0 * std::sqrt(trials / 7.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double lambda = 0.25;
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(lambda));
  EXPECT_NEAR(s.mean(), 1.0 / lambda, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  RunningStats small, large;
  for (int i = 0; i < 20000; ++i) small.add(double(rng.poisson(3.0)));
  for (int i = 0; i < 20000; ++i) large.add(double(rng.poisson(100.0)));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
}

TEST(Rng, ZipfLikePrefersLowIndices) {
  Rng rng(19);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    auto k = rng.zipf_like(100, 0.9);
    if (k < 10) ++low;
    if (k >= 90) ++high;
  }
  EXPECT_GT(low, high * 5);
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child stream should not replicate the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Bytes, FixedWidthRoundTrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(3.14159);
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  129,  255,  16383,      16384,
                                  1u << 21,   (1ull << 35) + 7,
                                  ~0ull};
  Bytes buf;
  ByteWriter w(buf);
  for (auto v : values) w.varint(v);
  ByteReader r(buf);
  for (auto v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, VarintSizes) {
  Bytes buf;
  ByteWriter w(buf);
  w.varint(127);
  EXPECT_EQ(buf.size(), 1u);
  w.varint(128);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(Bytes, ReaderUnderrunThrows) {
  Bytes buf = {0x01};
  ByteReader r(buf);
  r.u8();
  EXPECT_THROW(r.u8(), CheckError);
}

TEST(Bytes, RawSpans) {
  Bytes buf;
  ByteWriter w(buf);
  Bytes payload = {1, 2, 3, 4, 5};
  w.raw(payload);
  ByteReader r(buf);
  auto s = r.raw(5);
  EXPECT_EQ(Bytes(s.begin(), s.end()), payload);
}

TEST(Stats, RunningMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, MergeEqualsSequential) {
  Rng rng(29);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.25), 2.0);
}

TEST(Stats, Correlation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation_of(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(correlation_of(xs, zs), -1.0, 1e-12);
}

TEST(Linalg, SolveKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(solve_linear(a, {5, 10}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, SolveSingularFails) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  std::vector<double> x;
  EXPECT_FALSE(solve_linear(a, {1, 2}, x));
}

TEST(Linalg, SolveRandomSystemsRoundTrip) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_u64(8);
    Matrix a(n, n);
    std::vector<double> truth(n);
    for (std::size_t i = 0; i < n; ++i) {
      truth[i] = rng.normal();
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
      a(i, i) += double(n);  // diagonally dominant => well conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * truth[j];
    std::vector<double> x;
    ASSERT_TRUE(solve_linear(a, b, x));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-8);
  }
}

TEST(Linalg, LeastSquaresRecoversPlantedModel) {
  Rng rng(37);
  const std::size_t n = 200, p = 3;
  Matrix x(n, p);
  std::vector<double> beta_true = {2.0, -1.5, 0.5};
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      x(i, j) = rng.normal();
      acc += x(i, j) * beta_true[j];
    }
    y[i] = acc + 0.01 * rng.normal();
  }
  std::vector<double> beta;
  ASSERT_TRUE(least_squares(x, y, beta));
  for (std::size_t j = 0; j < p; ++j) EXPECT_NEAR(beta[j], beta_true[j], 0.02);
  EXPECT_LT(residual_sum_squares(x, y, beta), 0.05 * double(n));
}

TEST(Linalg, MatrixMultiplyIdentity) {
  Rng rng(41);
  Matrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.normal();
  Matrix p = m * Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(p(i, j), m(i, j));
}

TEST(Table, RendersAlignedAndCsv) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 1)});
  t.add_row({"beta", TextTable::pct(0.25, 0)});
  std::ostringstream os;
  t.print(os);
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("25%"), std::string::npos);
  EXPECT_NE(s.find("alpha,1.5"), std::string::npos);
}

TEST(Table, MismatchedRowThrows) {
  TextTable t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Crc32c, MatchesKnownVectors) {
  // RFC 3720 / published CRC-32C check values.
  const std::string check = "123456789";
  EXPECT_EQ(crc32c(ByteSpan(reinterpret_cast<const std::uint8_t*>(
                                check.data()),
                            check.size())),
            0xE3069283u);
  EXPECT_EQ(crc32c({}), 0x00000000u);
  const Bytes zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const Bytes ffs(32, 0xFF);
  EXPECT_EQ(crc32c(ffs), 0x62A8AB43u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  Rng rng(11);
  Bytes data(1000);
  for (auto& b : data) b = std::uint8_t(rng());
  const std::uint32_t oneshot = crc32c(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{500}, data.size()}) {
    std::uint32_t st = kCrc32cInit;
    st = crc32c_update(st, ByteSpan(data).subspan(0, split));
    st = crc32c_update(st, ByteSpan(data).subspan(split));
    EXPECT_EQ(crc32c_finalize(st), oneshot) << "split " << split;
  }
}

TEST(Crc32c, SensitiveToEverySingleBitFlip) {
  Rng rng(12);
  Bytes data(64);
  for (auto& b : data) b = std::uint8_t(rng());
  const std::uint32_t base = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = data;
      flipped[i] ^= std::uint8_t(1u << bit);
      EXPECT_NE(crc32c(flipped), base) << "byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace aic
