// Tests for the causal time-to-safe attribution layer (src/obs/causal.*):
// the CausalLog's open/add/close lifecycle, bounded retention (recent ring
// + top-k slowest), the attribution helpers (dominant, unattributed), and
// the end-to-end integration with the TransferScheduler — a drain with
// retries, an interrupt, and a resume must decompose its commit latency
// into drain-queue / in-flight / backoff / stalled segments that explain
// the total. The TSan leg runs every CausalTest.*.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "obs/causal.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/storage.h"
#include "xfer/channel.h"
#include "xfer/scheduler.h"
#include "xfer/staged_sink.h"

namespace {

using aic::obs::CausalChain;
using aic::obs::CausalLog;
using aic::obs::CausalSegment;

TEST(CausalTest, OpenAddCloseLifecycle) {
  CausalLog log;
  const std::uint64_t id = log.open("j1/c1", 7, 100.0);
  EXPECT_NE(id, 0u);
  EXPECT_EQ(log.open_count(), 1u);

  log.add(id, CausalSegment::kCapture, 0.5);
  log.add(id, CausalSegment::kInFlight, 2.0);
  log.add(id, CausalSegment::kInFlight, 1.0);  // accumulates
  log.close_total(id, 4.0);

  EXPECT_EQ(log.open_count(), 0u);
  EXPECT_EQ(log.closed(), 1u);
  const std::vector<CausalChain> recent = log.recent();
  ASSERT_EQ(recent.size(), 1u);
  const CausalChain& c = recent[0];
  EXPECT_EQ(c.label, "j1/c1");
  EXPECT_EQ(c.tenant, 7u);
  EXPECT_DOUBLE_EQ(c.open_t, 100.0);
  EXPECT_DOUBLE_EQ(c.total_s, 4.0);
  EXPECT_TRUE(c.closed);
  EXPECT_FALSE(c.aborted);
  EXPECT_DOUBLE_EQ(c.segment(CausalSegment::kInFlight), 3.0);
  EXPECT_DOUBLE_EQ(c.accounted(), 3.5);
  EXPECT_DOUBLE_EQ(c.unattributed(), 0.5);
  EXPECT_EQ(c.dominant(), CausalSegment::kInFlight);
}

TEST(CausalTest, CloseAtUsesOpenersClock) {
  CausalLog log;
  const std::uint64_t id = log.open("x", 0, 10.0);
  log.close_at(id, 17.5);
  ASSERT_EQ(log.recent().size(), 1u);
  EXPECT_DOUBLE_EQ(log.recent()[0].total_s, 7.5);
}

TEST(CausalTest, UnknownIdsAreIgnoredBestEffort) {
  CausalLog log;
  log.add(9999, CausalSegment::kCapture, 1.0);  // no chain: dropped
  log.close_total(9999, 1.0);
  log.add(0, CausalSegment::kCapture, 1.0);  // 0 is never a valid id
  EXPECT_EQ(log.closed(), 0u);
  EXPECT_TRUE(log.recent().empty());
}

TEST(CausalTest, UnattributedClampsAtZeroWhenOverAccounted) {
  // A chain mixing clock domains can legitimately account more seconds
  // than the closer's single-clock total (wall capture concurrent with a
  // virtual drain); unattributed() must clamp rather than go negative.
  CausalLog log;
  const std::uint64_t id = log.open("mixed", 0, 0.0);
  log.add(id, CausalSegment::kCapture, 3.0);
  log.add(id, CausalSegment::kInFlight, 2.0);
  log.close_total(id, 4.0);
  const CausalChain c = log.recent()[0];
  EXPECT_DOUBLE_EQ(c.accounted(), 5.0);
  EXPECT_DOUBLE_EQ(c.unattributed(), 0.0);
}

TEST(CausalTest, RingEvictsOldestClosedChains) {
  CausalLog::Config cfg;
  cfg.ring_capacity = 3;
  cfg.top_k = 2;
  CausalLog log(cfg);
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t id = log.open("c" + std::to_string(i), 0, 0.0);
    log.close_total(id, double(i + 1));
  }
  EXPECT_EQ(log.closed(), 6u);
  const std::vector<CausalChain> recent = log.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent.front().label, "c3");  // oldest retained
  EXPECT_EQ(recent.back().label, "c5");   // newest
}

TEST(CausalTest, TopKIsSlowestFirstAndExcludesAborted) {
  CausalLog::Config cfg;
  cfg.ring_capacity = 16;
  cfg.top_k = 3;
  CausalLog log(cfg);
  const double totals[] = {2.0, 9.0, 1.0, 5.0, 7.0};
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t id = log.open("c" + std::to_string(i), 0, 0.0);
    log.close_total(id, totals[i]);
  }
  // An even slower aborted chain must not displace committed ones.
  const std::uint64_t doomed = log.open("doomed", 0, 0.0);
  log.close_total(doomed, 100.0, /*aborted=*/true);

  const std::vector<CausalChain> top = log.slowest();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top[0].total_s, 9.0);
  EXPECT_DOUBLE_EQ(top[1].total_s, 7.0);
  EXPECT_DOUBLE_EQ(top[2].total_s, 5.0);
}

// --- TransferScheduler integration -----------------------------------------

aic::Bytes pattern_bytes(std::size_t n, std::uint64_t seed) {
  aic::Rng rng(seed);
  aic::Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

struct XferHarness {
  aic::obs::Hub hub;
  aic::storage::RemoteStore target{1.0e9};
  aic::xfer::StagedTargetSink sink{target};
  aic::xfer::TransferScheduler sched;

  explicit XferHarness(aic::xfer::TransferScheduler::Config cfg = {},
                       aic::xfer::Channel::Config ch = {1000.0, 0.0}) {
    hub.enable_telemetry();
    cfg.obs = &hub;
    sched = aic::xfer::TransferScheduler(cfg);
    sched.add_level(3, ch, &sink);
  }

  CausalLog& log() { return hub.telemetry()->causal(); }
};

TEST(CausalTest, CleanDrainIsAllInFlight) {
  aic::xfer::TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  XferHarness h(cfg);
  const auto id = h.sched.submit(3, "obj", pattern_bytes(1000, 1));
  const std::uint64_t cid = h.log().open("obj", 0, h.sched.now());
  h.sched.annotate(id, cid);
  h.sched.run_until_idle();

  const std::vector<CausalChain> recent = h.log().recent();
  ASSERT_EQ(recent.size(), 1u);
  const CausalChain& c = recent[0];
  EXPECT_TRUE(c.closed);
  EXPECT_FALSE(c.aborted);
  EXPECT_NEAR(c.total_s, 1.0, 1e-9);  // 1000 B at 1000 B/s
  // A fault-free single drain spends its whole life on the wire.
  EXPECT_EQ(c.dominant(), CausalSegment::kInFlight);
  EXPECT_NEAR(c.segment(CausalSegment::kInFlight), c.total_s, 1e-9);
  EXPECT_NEAR(c.unattributed(), 0.0, 1e-9);
}

TEST(CausalTest, RetriesChargeBackoffAndSegmentsExplainTotal) {
  aic::xfer::TransferScheduler::Config cfg;
  cfg.chunk_bytes = 500;
  cfg.retry.initial_backoff_s = 0.5;
  XferHarness h(cfg);
  h.sched.channel(3).inject_drops(2);
  const auto id = h.sched.submit(3, "obj", pattern_bytes(1000, 2));
  const std::uint64_t cid = h.log().open("obj", 0, h.sched.now());
  h.sched.annotate(id, cid);
  h.sched.run_until_idle();

  ASSERT_EQ(h.log().recent().size(), 1u);
  const CausalChain c = h.log().recent()[0];
  EXPECT_TRUE(c.closed);
  EXPECT_GT(c.segment(CausalSegment::kBackoff), 0.0);
  EXPECT_GT(c.segment(CausalSegment::kInFlight), 0.0);
  // Failed attempts occupy the wire too: in-flight covers 4 chunk sends
  // (2 drops + 2 successes), backoff the waits between them, and together
  // the segments explain the commit latency.
  EXPECT_NEAR(c.accounted(), c.total_s, 1e-6);
}

TEST(CausalTest, InterruptedDrainChargesStalledSegment) {
  aic::xfer::TransferScheduler::Config cfg;
  cfg.chunk_bytes = 500;
  XferHarness h(cfg);
  const auto id = h.sched.submit(3, "obj", pattern_bytes(1000, 3));
  const std::uint64_t cid = h.log().open("obj", 0, h.sched.now());
  h.sched.annotate(id, cid);

  h.sched.run_until(0.25);  // mid first chunk
  h.sched.interrupt(id);
  h.sched.run_until(5.0);   // stalled: nothing progresses
  h.sched.resume(id);
  h.sched.run_until_idle();

  ASSERT_EQ(h.log().recent().size(), 1u);
  const CausalChain c = h.log().recent()[0];
  EXPECT_TRUE(c.closed);
  EXPECT_FALSE(c.aborted);
  // The stall window [0.25, 5.0] dominates the decomposition.
  EXPECT_NEAR(c.segment(CausalSegment::kStalled), 4.75, 1e-6);
  EXPECT_EQ(c.dominant(), CausalSegment::kStalled);
  EXPECT_NEAR(c.accounted(), c.total_s, 1e-6);
}

TEST(CausalTest, AbortedDrainClosesChainAsAborted) {
  aic::xfer::TransferScheduler::Config cfg;
  cfg.chunk_bytes = 500;
  cfg.retry.max_attempts_per_chunk = 2;
  XferHarness h(cfg);
  h.sched.channel(3).inject_drops(2);  // exhausts both attempts
  const auto id = h.sched.submit(3, "doomed", pattern_bytes(1000, 4));
  const std::uint64_t cid = h.log().open("doomed", 0, h.sched.now());
  h.sched.annotate(id, cid);
  h.sched.run_until_idle();

  ASSERT_EQ(h.log().recent().size(), 1u);
  const CausalChain c = h.log().recent()[0];
  EXPECT_TRUE(c.closed);
  EXPECT_TRUE(c.aborted);
  EXPECT_TRUE(h.log().slowest().empty());  // aborted chains never rank
}

TEST(CausalTest, SharedChannelDrainQueuesAreAttributed) {
  // Two equal drains share the channel; each commit decomposes into its
  // own wire time plus the contention it suffered, and both chains close.
  aic::xfer::TransferScheduler::Config cfg;
  cfg.chunk_bytes = 250;
  XferHarness h(cfg);
  const auto a = h.sched.submit(3, "a", pattern_bytes(500, 5));
  const auto b = h.sched.submit(3, "b", pattern_bytes(500, 6));
  const std::uint64_t ca = h.log().open("a", 0, h.sched.now());
  const std::uint64_t cb = h.log().open("b", 0, h.sched.now());
  h.sched.annotate(a, ca);
  h.sched.annotate(b, cb);
  h.sched.run_until_idle();

  const std::vector<CausalChain> recent = h.log().recent();
  ASSERT_EQ(recent.size(), 2u);
  for (const CausalChain& c : recent) {
    EXPECT_TRUE(c.closed);
    EXPECT_NEAR(c.accounted(), c.total_s, 1e-6);
  }
}

}  // namespace
