// Tests for the xfer transfer engine: chunk pricing and fault semantics on
// the simulated Channel, the TransferScheduler's state machine (retry with
// capped exponential backoff, typed aborts, atomic staging commits,
// interrupt/resume), emergent bandwidth sharing, and the end-to-end
// torn-object guarantee through MultiLevelStore — a failure between any
// two chunks leaves recover() seeing only committed checkpoints, and the
// resumed drain lands byte-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include "ckpt/async_checkpointer.h"
#include "ckpt/checkpointer.h"
#include "common/rng.h"
#include "mem/snapshot.h"
#include "storage/multilevel_store.h"
#include "verify/chain_verifier.h"
#include "xfer/channel.h"
#include "xfer/scheduler.h"
#include "xfer/staged_sink.h"

namespace aic::xfer {
namespace {

Bytes pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

TEST(XferChannel, PricesAtPerStreamShare) {
  Channel ch({1000.0, 0.5});
  ch.open_stream();
  Channel::SendOutcome out = ch.send(1000);
  EXPECT_TRUE(out.acked);
  EXPECT_DOUBLE_EQ(out.seconds, 0.5 + 1.0);
  EXPECT_EQ(out.bytes_delivered, 1000u);

  ch.open_stream();  // second concurrent stream halves the share
  out = ch.send(1000);
  EXPECT_DOUBLE_EQ(out.seconds, 0.5 + 2.0);
  ch.close_stream();
  ch.close_stream();
}

TEST(XferChannel, RejectsBadConfig) {
  EXPECT_THROW(Channel({0.0, 0.0}), CheckError);
  EXPECT_THROW(Channel({-5.0, 0.0}), CheckError);
  EXPECT_THROW(Channel({1000.0, -1.0}), CheckError);
}

TEST(XferChannel, ScriptedFaultsApplyInFifoOrder) {
  Channel ch({1000.0, 0.0});
  ch.inject({FaultKind::kDrop, 0.0, 0.0});
  ch.inject({FaultKind::kStall, 3.0, 0.0});
  ch.inject({FaultKind::kPartialWrite, 0.0, 0.25});
  ch.open_stream();

  Channel::SendOutcome drop = ch.send(1000);
  EXPECT_FALSE(drop.acked);
  EXPECT_DOUBLE_EQ(drop.seconds, 1.0) << "a drop still wastes wire time";
  EXPECT_EQ(drop.bytes_delivered, 0u);

  Channel::SendOutcome stall = ch.send(1000);
  EXPECT_TRUE(stall.acked);
  EXPECT_DOUBLE_EQ(stall.seconds, 4.0);

  Channel::SendOutcome partial = ch.send(1000);
  EXPECT_FALSE(partial.acked);
  EXPECT_EQ(partial.bytes_delivered, 250u);
  EXPECT_DOUBLE_EQ(partial.seconds, 0.25);

  Channel::SendOutcome clean = ch.send(1000);
  EXPECT_TRUE(clean.acked);
  ch.close_stream();
}

// A scheduler + remote-store sink harness used by most scheduler tests.
struct Harness {
  storage::RemoteStore target{1.0e9};  // publication put is not the wire
  StagedTargetSink sink{target};
  TransferScheduler sched;

  explicit Harness(TransferScheduler::Config cfg = {},
                   Channel::Config ch = {1000.0, 0.0}) {
    sched = TransferScheduler(cfg);
    sched.add_level(3, ch, &sink);
  }
};

TEST(XferScheduler, CommitIsAtomicAndByteIdentical) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  Harness h(cfg);
  const Bytes data = pattern_bytes(950, 42);
  const TransferId id = h.sched.submit(3, "obj", data);

  // Mid-drain: staged bytes accumulate, nothing visible in the target.
  h.sched.run_until(0.35);  // 3 chunks of 100 B at 1 kB/s
  EXPECT_EQ(h.sched.record(id).acked_bytes, 300u);
  EXPECT_GT(h.sink.staged_bytes("obj"), 0u);
  EXPECT_FALSE(h.target.get("obj").has_value())
      << "staged partials must be invisible";

  h.sched.run_until_idle();
  const TransferRecord& rec = h.sched.record(id);
  EXPECT_EQ(rec.state, TransferState::kCommitted);
  EXPECT_DOUBLE_EQ(rec.commit_time, 0.95);
  EXPECT_EQ(h.sink.partial_count(), 0u) << "commit clears staging";
  auto landed = h.target.get("obj");
  ASSERT_TRUE(landed.has_value());
  EXPECT_EQ(*landed, data);

  const Stats s = h.sched.stats();
  EXPECT_EQ(s.chunks_sent, 10u);  // 9 full + 1 half chunk
  EXPECT_EQ(s.bytes_acked, 950u);
  EXPECT_EQ(s.transfers_committed, 1u);
  EXPECT_EQ(s.retries, 0u);
}

TEST(XferScheduler, ZeroByteObjectCommitsImmediately) {
  Harness h;
  const TransferId id = h.sched.submit(3, "empty", {});
  h.sched.run_until_idle();
  EXPECT_EQ(h.sched.record(id).state, TransferState::kCommitted);
  ASSERT_TRUE(h.target.get("empty").has_value());
  EXPECT_TRUE(h.target.get("empty")->empty());
}

TEST(XferScheduler, DropFirstKCommitsAfterExactlyKRetries) {
  for (int k = 1; k <= 6; ++k) {
    TransferScheduler::Config cfg;
    cfg.chunk_bytes = 200;
    cfg.retry.max_attempts_per_chunk = 8;
    cfg.retry.initial_backoff_s = 0.05;
    cfg.retry.backoff_multiplier = 2.0;
    cfg.retry.max_backoff_s = 0.3;  // cap inside the tested range
    Harness h(cfg);
    h.sched.channel(3).inject_drops(k);

    const Bytes data = pattern_bytes(600, 7);
    const TransferId id = h.sched.submit(3, "obj", data);
    h.sched.run_until_idle();

    const TransferRecord& rec = h.sched.record(id);
    ASSERT_EQ(rec.state, TransferState::kCommitted) << "k=" << k;
    EXPECT_EQ(rec.stats.retries, std::uint64_t(k));
    ASSERT_EQ(rec.backoff_history.size(), std::size_t(k));
    for (int i = 0; i < k; ++i) {
      const double expected =
          std::min(0.05 * std::pow(2.0, double(i)), 0.3);
      EXPECT_DOUBLE_EQ(rec.backoff_history[std::size_t(i)], expected);
      if (i > 0) {
        EXPECT_GE(rec.backoff_history[std::size_t(i)],
                  rec.backoff_history[std::size_t(i - 1)])
            << "backoffs must be monotone non-decreasing";
      }
      EXPECT_LE(rec.backoff_history[std::size_t(i)], 0.3) << "capped";
    }
    EXPECT_EQ(*h.target.get("obj"), data);
  }
}

TEST(XferScheduler, ExhaustedRetryBudgetAbortsWithTypedError) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  cfg.retry.max_attempts_per_chunk = 3;
  Harness h(cfg);
  // First two chunks clean, then the budget's worth of drops at the third.
  h.sched.channel(3).inject({FaultKind::kStall, 0.0, 0.0});
  h.sched.channel(3).inject({FaultKind::kStall, 0.0, 0.0});
  h.sched.channel(3).inject_drops(3);

  const Bytes data = pattern_bytes(500, 9);
  const TransferId id = h.sched.submit(3, "doomed", data);
  h.sched.run_until_idle();

  const TransferRecord& rec = h.sched.record(id);
  ASSERT_EQ(rec.state, TransferState::kAborted);
  EXPECT_EQ(rec.acked_bytes, 200u);
  EXPECT_EQ(h.sink.partial_count(), 0u) << "abort discards the partial";
  EXPECT_FALSE(h.target.get("doomed").has_value());

  try {
    h.sched.rethrow_if_aborted(id);
    FAIL() << "abort must rethrow";
  } catch (const TransferError& e) {
    EXPECT_EQ(e.level(), 3);
    EXPECT_EQ(e.chunk_offset(), 200u);
    const std::string what = e.what();
    EXPECT_NE(what.find("level 3"), std::string::npos) << what;
    EXPECT_NE(what.find("chunk offset 200"), std::string::npos) << what;
    EXPECT_NE(what.find("3 attempts"), std::string::npos) << what;
  }
}

TEST(XferScheduler, PartialWriteGarbageIsOverwrittenByRetry) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  Harness h(cfg);
  h.sched.channel(3).inject({FaultKind::kPartialWrite, 0.0, 0.6});

  const Bytes data = pattern_bytes(300, 11);
  const TransferId id = h.sched.submit(3, "obj", data);
  h.sched.run_until_idle();

  EXPECT_EQ(h.sched.record(id).state, TransferState::kCommitted);
  EXPECT_EQ(h.sched.record(id).stats.retries, 1u);
  EXPECT_EQ(*h.target.get("obj"), data)
      << "the 60-byte garbage prefix must not survive the retry";
}

TEST(XferScheduler, StallBeyondTimeoutCostsExactlyTheTimeout) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  cfg.retry.chunk_timeout_s = 0.5;
  cfg.retry.initial_backoff_s = 0.1;
  cfg.retry.backoff_multiplier = 1.0;
  cfg.retry.max_backoff_s = 0.1;
  Harness h(cfg);
  // Chunk takes 0.1 s clean; a 10 s stall trips the 0.5 s timeout.
  h.sched.channel(3).inject({FaultKind::kStall, 10.0, 0.0});

  const TransferId id = h.sched.submit(3, "obj", pattern_bytes(100, 3));
  h.sched.run_until_idle();
  const TransferRecord& rec = h.sched.record(id);
  EXPECT_EQ(rec.state, TransferState::kCommitted);
  EXPECT_EQ(rec.stats.retries, 1u);
  // 0.5 timeout + 0.1 backoff + 0.1 clean send.
  EXPECT_DOUBLE_EQ(rec.commit_time, 0.7);
}

TEST(XferScheduler, TwoConcurrentDrainsEachSeeHalfGoodput) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  Harness h(cfg, {1000.0, 0.0});
  const Bytes a = pattern_bytes(1000, 21);
  const Bytes b = pattern_bytes(1000, 22);
  const TransferId ia = h.sched.submit(3, "a", a);
  const TransferId ib = h.sched.submit(3, "b", b);
  h.sched.run_until_idle();

  // Solo, 1000 B at 1 kB/s lands in 1 s; sharing the channel, each drain's
  // chunks are priced at half bandwidth throughout, so both land at ~2 s —
  // goodput bandwidth/2 each (the Fig. 7 sharing factor, emergent).
  const TransferRecord& ra = h.sched.record(ia);
  const TransferRecord& rb = h.sched.record(ib);
  ASSERT_EQ(ra.state, TransferState::kCommitted);
  ASSERT_EQ(rb.state, TransferState::kCommitted);
  EXPECT_NEAR(ra.commit_time - ra.submit_time, 2.0, 0.05);
  EXPECT_NEAR(rb.commit_time - rb.submit_time, 2.0, 0.05);
  EXPECT_EQ(*h.target.get("a"), a);
  EXPECT_EQ(*h.target.get("b"), b);

  const Stats s = h.sched.stats();
  EXPECT_NEAR(s.goodput_bps(h.sched.now()), 1000.0, 1.0)
      << "aggregate goodput still fills the channel";
}

TEST(XferScheduler, InterruptKeepsAckedBytesAndResumeFinishes) {
  TransferScheduler::Config cfg;
  cfg.chunk_bytes = 100;
  Harness h(cfg);
  const Bytes data = pattern_bytes(1000, 33);
  const TransferId id = h.sched.submit(3, "obj", data);

  h.sched.run_until(0.45);  // 4 chunks acked, 5th in flight
  ASSERT_EQ(h.sched.interrupt_level(3), 1u);
  const TransferRecord& rec = h.sched.record(id);
  EXPECT_EQ(rec.state, TransferState::kInterrupted);
  EXPECT_EQ(rec.acked_bytes, 400u);
  EXPECT_FALSE(h.target.get("obj").has_value());

  // Interrupted transfers are not runnable: time passes, nothing moves.
  h.sched.run_until(10.0);
  EXPECT_EQ(h.sched.record(id).acked_bytes, 400u);

  ASSERT_EQ(h.sched.resume_level(3), 1u);
  h.sched.run_until_idle();
  EXPECT_EQ(h.sched.record(id).state, TransferState::kCommitted);
  EXPECT_EQ(*h.target.get("obj"), data) << "resumed drain byte-identical";
  EXPECT_EQ(h.sched.stats().transfers_interrupted, 1u);
}

// ---- end-to-end torn-object guarantee through MultiLevelStore ----

storage::MultiLevelConfig tiny_store_config() {
  storage::MultiLevelConfig mc;
  mc.local_bps = 1.0e6;
  mc.raid_bps = 4096.0;    // L2 drain: one 1 KiB chunk = 0.25 s
  mc.remote_bps = 1024.0;  // L3 drain: one 1 KiB chunk = 1 s
  mc.xfer.chunk_bytes = 1024;
  return mc;
}

/// Builds a 3-checkpoint chain (full + 2 deltas) with real page content.
std::vector<ckpt::CheckpointFile> make_chain_files() {
  mem::AddressSpace space;
  space.allocate_range(0, 16);
  Rng rng(5);
  ckpt::CheckpointChain chain;
  for (int c = 0; c < 3; ++c) {
    for (mem::PageId id = 0; id < 16; id += (c + 1)) {
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    chain.capture(space, {}, double(c));
    space.protect_all();
  }
  return chain.files();
}

TEST(XferTornObject, FailureBetweenAnyTwoChunksNeverTearsRecovery) {
  const std::vector<ckpt::CheckpointFile> files = make_chain_files();
  ASSERT_EQ(files.size(), 3u);
  const Bytes last_wire = files[2].serialize();
  const auto n_chunks = std::uint64_t((last_wire.size() + 1023) / 1024);
  ASSERT_GE(n_chunks, 2u) << "need a multi-chunk drain to interrupt";
  const verify::ChainVerifier verifier;

  // Strike the failure inside every chunk of the last checkpoint's L3
  // drain (the L2 drain, 4x faster, is mid-flight for the early strikes
  // and legitimately committed for the later ones).
  const std::uint64_t tail =
      last_wire.size() - (n_chunks - 1) * 1024;  // last chunk's bytes
  for (std::uint64_t chunk = 0; chunk < n_chunks; ++chunk) {
    SCOPED_TRACE("failure during chunk " + std::to_string(chunk));
    storage::MultiLevelStore store(tiny_store_config());
    Rng rng(chunk + 1);
    (void)store.put_checkpoint(files[0]);
    (void)store.put_checkpoint(files[1]);
    const storage::DrainTicket ticket =
        store.put_checkpoint_async(files[2]);

    // Midpoint of this chunk's wire window (the tail chunk is shorter).
    const double mid = chunk < n_chunks - 1
                           ? double(chunk) + 0.5
                           : double(chunk) + double(tail) / 2048.0;
    store.xfer().run_until(store.xfer().now() + mid);
    const bool l2_landed =
        ticket.raid.has_value() &&
        store.xfer().record(*ticket.raid).state == TransferState::kCommitted;
    store.apply_failure(2, rng);  // node death mid-drain

    // recover() must see only committed checkpoints — the torn third one
    // is invisible unless its (faster) L2 drain already committed, and
    // what IS visible verifies clean.
    auto rec = store.recover();
    ASSERT_TRUE(rec.has_value());
    ASSERT_EQ(rec->chain.size(), l2_landed ? 3u : 2u)
        << "in-flight checkpoint must not be visible";
    EXPECT_EQ(rec->chain.back().sequence, l2_landed ? 2u : 1u);
    const verify::Report report = verifier.verify(rec->chain);
    EXPECT_TRUE(report.ok()) << report.summary();

    // Resume: the drain continues from its last acked chunk and the
    // landed object is byte-identical to the uninterrupted transfer.
    EXPECT_GT(store.resume_drains(), 0u);
    store.xfer().run_until_idle();
    EXPECT_EQ(store.unfinished_drains(), 0u);
    auto landed = store.remote().get("ckpt-2");
    ASSERT_TRUE(landed.has_value());
    EXPECT_EQ(*landed, last_wire);

    // The full 3-record chain read back from the remote level verifies
    // clean end to end (aic_fsck's engine, exit-0 equivalent).
    auto full = store.recover();
    ASSERT_TRUE(full.has_value());
    ASSERT_EQ(full->chain.size(), 3u);
    EXPECT_TRUE(verifier.verify(full->chain).ok());
    EXPECT_GT(store.xfer().stats().transfers_interrupted, 0u);
  }
}

TEST(XferTornObject, StagedPartialInvisibleToEveryLevel) {
  storage::MultiLevelStore store(tiny_store_config());
  const std::vector<ckpt::CheckpointFile> files = make_chain_files();
  (void)store.put_checkpoint_async(files[0]);
  store.xfer().run_until(1.5);  // L3 mid-drain (L2 may have landed)

  EXPECT_GT(store.remote_staging().partial_count(), 0u);
  EXPECT_FALSE(store.remote().get("ckpt-0").has_value());
  // Local landed synchronously; the recover answer is the local copy, and
  // it never includes an uncommitted partial from another level.
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level_used, 1);
  store.xfer().run_until_idle();
  EXPECT_EQ(store.remote_staging().partial_count(), 0u);
  EXPECT_TRUE(store.remote().get("ckpt-0").has_value());
}

// ---- concurrency: the worker thread drains while the app submits ----
// (runs under the tsan verify leg via the Xfer name filter)

TEST(XferConcurrentAsyncDrain, WorkerDrainsWhileAppSubmits) {
  storage::MultiLevelConfig mc;
  mc.local_bps = 1.0e9;
  mc.raid_bps = 1.0e9;
  mc.remote_bps = 1.0e8;
  mc.xfer.chunk_bytes = 4096;
  storage::MultiLevelStore store(mc);

  std::atomic<int> compressed{0};
  std::atomic<int> landed{0};
  ckpt::AsyncCheckpointer::Config cfg;
  cfg.store = &store;
  cfg.on_complete = [&](const ckpt::AsyncResult& r) {
    EXPECT_FALSE(r.landed);
    ++compressed;
  };
  cfg.on_landed = [&](const ckpt::AsyncResult& r) {
    EXPECT_TRUE(r.landed);
    EXPECT_GT(r.placement.remote, 0.0);
    ++landed;
  };

  mem::AddressSpace space;
  space.allocate_range(0, 64);
  Rng rng(17);
  {
    ckpt::AsyncCheckpointer async(std::move(cfg));
    for (int c = 0; c < 5; ++c) {
      for (mem::PageId id = 0; id < 64; id += 3) {
        space.mutate(id, [&](std::span<std::uint8_t> b) {
          for (auto& x : b) x = std::uint8_t(rng());
        });
      }
      async.submit(space, {}, double(c));
    }
    async.drain();
  }
  EXPECT_EQ(compressed.load(), 5);
  EXPECT_EQ(landed.load(), 5);
  EXPECT_EQ(store.checkpoints_stored(), 5u);
  EXPECT_EQ(store.unfinished_drains(), 0u);

  // Every level holds the full committed chain; it verifies clean.
  auto rec = store.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->chain.size(), 5u);
  EXPECT_TRUE(verify::ChainVerifier().verify(rec->chain).ok());
}

}  // namespace
}  // namespace aic::xfer
