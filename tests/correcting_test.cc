// Tests for the one-pass correcting delta coder (delta/correcting.h) and
// its page-level integration (cdelta records, MoveIndex, in-place
// decompress): randomized mutate/move/splice round trips, in-place
// reconstruction equivalence (including copy cycles), hostile payloads
// (truncated / bit-flipped / overlapping), a differential check against
// XDelta3Codec, and the moved-block compression-ratio claims that justify
// the coder's existence. The ASan/UBSan and TSan verify legs run all of
// these (scripts/verify.sh matrix includes |Correcting).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "delta/correcting.h"
#include "delta/page_delta.h"
#include "delta/xdelta3.h"
#include "mem/snapshot.h"

namespace aic::delta {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

/// One random edit burst: point mutations, a block move (memmove-style
/// self-overlap included), or a splice (insert/delete changing the
/// length) — the moved-block workloads the correcting coder targets.
Bytes mutate(Rng& rng, const Bytes& source) {
  Bytes t = source;
  const int kind = int(rng.uniform_u64(4));
  if (t.empty()) return random_bytes(rng, rng.uniform_u64(64));
  switch (kind) {
    case 0: {  // point mutations
      const std::size_t edits = 1 + rng.uniform_u64(8);
      for (std::size_t i = 0; i < edits; ++i)
        t[rng.uniform_u64(t.size())] = std::uint8_t(rng());
      break;
    }
    case 1: {  // block move within the buffer (overlap allowed)
      const std::size_t len = 1 + rng.uniform_u64(t.size());
      const std::size_t from = rng.uniform_u64(t.size() - len + 1);
      const std::size_t to = rng.uniform_u64(t.size() - len + 1);
      std::memmove(t.data() + to, t.data() + from, len);
      break;
    }
    case 2: {  // splice in fresh bytes
      const std::size_t at = rng.uniform_u64(t.size() + 1);
      Bytes ins = random_bytes(rng, 1 + rng.uniform_u64(64));
      t.insert(t.begin() + at, ins.begin(), ins.end());
      break;
    }
    default: {  // delete a block
      const std::size_t len = 1 + rng.uniform_u64(t.size());
      const std::size_t at = rng.uniform_u64(t.size() - len + 1);
      t.erase(t.begin() + at, t.begin() + at + len);
      break;
    }
  }
  return t;
}

TEST(Correcting, RandomizedRoundTripAndInPlace) {
  Rng rng(0xC0FFEE);
  const CorrectingDeltaCodec codec;
  Bytes source = random_bytes(rng, 8 * 1024);
  for (int iter = 0; iter < 120; ++iter) {
    Bytes target = mutate(rng, source);
    CodecStats st;
    Bytes delta = codec.encode(source, target, &st);
    EXPECT_EQ(codec.decode(source, delta), target) << "iter " << iter;

    Bytes buf = source;
    codec.apply_in_place(buf, delta);
    EXPECT_EQ(buf, target) << "in-place, iter " << iter;

    source = std::move(target);  // chain the history like a checkpoint run
  }
}

TEST(Correcting, RotationCyclesReconstructInPlace) {
  // A rotation is the canonical write-after-read cycle: every in-place
  // schedule must demote some copy to a literal to break it. Exercise many
  // rotation distances, including ones smaller than the seed window.
  Rng rng(7);
  const CorrectingDeltaCodec codec;
  const Bytes source = random_bytes(rng, 4096);
  for (std::size_t k : {1u, 5u, 12u, 64u, 500u, 2048u, 4000u}) {
    Bytes target(source.size());
    std::rotate_copy(source.begin(), source.begin() + k, source.end(),
                     target.begin());
    Bytes delta = codec.encode(source, target);
    EXPECT_EQ(codec.decode(source, delta), target) << "k=" << k;
    Bytes buf = source;
    codec.apply_in_place(buf, delta);
    EXPECT_EQ(buf, target) << "k=" << k;
  }
}

TEST(Correcting, FixedFrameInPlaceMatchesDecode) {
  Rng rng(11);
  const CorrectingDeltaCodec codec(CorrectingDeltaCodec::page_config());
  for (int iter = 0; iter < 40; ++iter) {
    Bytes source = random_bytes(rng, kPageSize);
    Bytes target = source;
    // In-frame churn only (fixed size): moves and point edits.
    const std::size_t len = 1 + rng.uniform_u64(2048);
    const std::size_t from = rng.uniform_u64(kPageSize - len + 1);
    const std::size_t to = rng.uniform_u64(kPageSize - len + 1);
    std::memmove(target.data() + to, target.data() + from, len);
    for (int e = 0; e < 4; ++e)
      target[rng.uniform_u64(kPageSize)] = std::uint8_t(rng());

    Bytes delta = codec.encode(source, target);
    Bytes frame = source;
    codec.apply_in_place(std::span<std::uint8_t>(frame), delta);
    EXPECT_EQ(frame, target) << "iter " << iter;
  }
}

TEST(Correcting, SizeChangeRejectedByFixedFrame) {
  const CorrectingDeltaCodec codec;
  Bytes source = {1, 2, 3, 4, 5, 6, 7, 8};
  Bytes target = {1, 2, 3, 4};
  Bytes delta = codec.encode(source, target);
  Bytes buf = source;
  codec.apply_in_place(buf, delta);  // resizing variant shrinks
  EXPECT_EQ(buf, target);
  Bytes frame = source;
  EXPECT_THROW(codec.apply_in_place(std::span<std::uint8_t>(frame), delta),
               CheckError);
}

TEST(Correcting, DifferentialAgainstXdelta3) {
  // Two independent coders, same inputs: both must reproduce the target
  // exactly. Any divergence means one of them mis-encodes.
  Rng rng(0xD1FF);
  const CorrectingDeltaCodec correcting;
  const XDelta3Codec greedy;
  Bytes source = random_bytes(rng, 16 * 1024);
  for (int iter = 0; iter < 60; ++iter) {
    Bytes target = mutate(rng, source);
    Bytes dc = correcting.encode(source, target);
    Bytes dg = greedy.encode(source, target);
    ASSERT_EQ(correcting.decode(source, dc), target) << "iter " << iter;
    ASSERT_EQ(greedy.decode(source, dg), target) << "iter " << iter;
    source = std::move(target);
  }
}

TEST(Correcting, HostilePayloadsThrowNeverCrash) {
  Rng rng(0xBAD);
  const CorrectingDeltaCodec codec;
  const Bytes source = random_bytes(rng, 2048);
  const Bytes target = mutate(rng, source);
  const Bytes delta = codec.encode(source, target);

  // Truncation at every length: either throws CheckError or (only for a
  // prefix that happens to still be well-formed — impossible here since
  // coverage must be exact) decodes to the target.
  for (std::size_t cut = 0; cut < delta.size(); ++cut) {
    Bytes torn(delta.begin(), delta.begin() + cut);
    EXPECT_THROW((void)codec.decode(source, torn), CheckError)
        << "cut=" << cut;
  }

  // Single-bit flips at every offset: decode must never read out of
  // bounds or write outside the target (ASan leg proves it); a flip may
  // legally still decode if it only changes ADD payload bytes.
  for (std::size_t off = 0; off < delta.size(); ++off) {
    Bytes bent = delta;
    bent[off] ^= 1u << rng.uniform_u64(8);
    try {
      (void)codec.decode(source, bent);
    } catch (const CheckError&) {
      // expected for most offsets
    }
    Bytes buf = source;
    try {
      codec.apply_in_place(buf, bent);
    } catch (const CheckError&) {
    }
  }

  // Hand-built hostile streams.
  const auto raw_delta = [&](auto build) {
    Bytes d;
    ByteWriter w(d);
    build(w);
    return d;
  };
  // COPY reaching past the source.
  EXPECT_THROW((void)codec.decode(source, raw_delta([&](ByteWriter& w) {
                 w.varint(source.size());  // source_size
                 w.varint(8);              // target_size
                 w.u8(0x02);               // COPY
                 w.varint(0);              // tgt_off
                 w.varint(source.size() - 4);  // src_off
                 w.varint(8);                  // len: 4 past the end
               })),
               CheckError);
  // ADD with a 2^63 length (overflow bait).
  EXPECT_THROW((void)codec.decode(source, raw_delta([&](ByteWriter& w) {
                 w.varint(source.size());
                 w.varint(16);
                 w.u8(0x03);  // ADD
                 w.varint(0);
                 w.varint(std::uint64_t(1) << 63);
               })),
               CheckError);
  // Gap in coverage (two ops that do not partition the target).
  EXPECT_THROW((void)codec.decode(source, raw_delta([&](ByteWriter& w) {
                 w.varint(source.size());
                 w.varint(16);
                 w.u8(0x02);
                 w.varint(0);  // tgt [0, 4)
                 w.varint(0);
                 w.varint(4);
                 w.u8(0x02);
                 w.varint(8);  // tgt [8, 16): hole at [4, 8)
                 w.varint(0);
                 w.varint(8);
               })),
               CheckError);
  // Declared source size that does not match the actual source.
  EXPECT_THROW((void)codec.decode(source, raw_delta([&](ByteWriter& w) {
                 w.varint(source.size() + 1);
                 w.varint(0);
               })),
               CheckError);
}

TEST(Correcting, MovedBlockRatioBeatsGreedy) {
  // The headline claim: moves at sub-block granularity. The greedy coder
  // indexes the source in 64-byte blocks, so a target window only matches
  // when 64 contiguous source bytes survive the edit — a permutation of
  // 48-byte chunks leaves it almost nothing and it degenerates to
  // literals. The correcting coder's 16-byte seeds find every chunk.
  // (Latency is benchmarked, not unit-tested: bench/micro_delta +
  // aic_benchdiff gate it against the recorded baselines.)
  Rng rng(0x5EED);
  const CorrectingDeltaCodec correcting;
  const XDelta3Codec greedy;
  const std::size_t kChunk = 48;
  const Bytes source = random_bytes(rng, 32 * 1024);
  const std::size_t chunks = source.size() / kChunk;
  std::vector<std::size_t> order(chunks);
  for (std::size_t i = 0; i < chunks; ++i) order[i] = i;
  for (std::size_t i = chunks - 1; i > 0; --i)
    std::swap(order[i], order[rng.uniform_u64(i + 1)]);
  Bytes target;
  target.reserve(source.size());
  for (std::size_t c : order)
    target.insert(target.end(), source.begin() + c * kChunk,
                  source.begin() + (c + 1) * kChunk);
  target.insert(target.end(), source.begin() + chunks * kChunk,
                source.end());

  const Bytes dc = correcting.encode(source, target);
  const Bytes dg = greedy.encode(source, target);
  ASSERT_EQ(correcting.decode(source, dc), target);
  ASSERT_EQ(greedy.decode(source, dg), target);
  EXPECT_LT(dc.size(), dg.size());
  EXPECT_LT(double(dc.size()) / double(target.size()), 0.35);
  // Document the greedy blind spot this workload exploits: it should be
  // close to incompressible for the block-aligned coder.
  EXPECT_GT(double(dg.size()) / double(target.size()), 0.80);

  // On a single clean memmove both coders find the three runs; the
  // correcting coder must stay in the same tiny-delta class (its COPY
  // carries an extra target offset, so allow a constant-factor pad).
  for (std::size_t shift : {3u, 17u, 1000u}) {
    Bytes moved = source;
    std::memmove(moved.data() + 8 * 1024 + shift, source.data() + 8 * 1024,
                 16 * 1024);
    const Bytes mc = correcting.encode(source, moved);
    ASSERT_EQ(correcting.decode(source, mc), moved);
    EXPECT_LT(double(mc.size()) / double(moved.size()), 0.01)
        << "shift=" << shift;
  }
}

// ---------------------------------------------------------------------------
// Page-level integration: cdelta records, MoveIndex, in-place decompress.

mem::Snapshot snapshot_of(const std::vector<std::pair<mem::PageId, Bytes>>&
                              pages) {
  mem::Snapshot s;
  for (const auto& [id, bytes] : pages) s.put_page(id, bytes);
  return s;
}

// Snapshot is move-only (page frames are unique_ptrs); tests that compare
// the two restore paths need deep copies.
mem::Snapshot clone(const mem::Snapshot& s) {
  mem::Snapshot c;
  s.overlay_onto(c);
  return c;
}

TEST(CorrectingPages, WholePageMovesBecomeTinyRecords) {
  Rng rng(21);
  std::vector<std::pair<mem::PageId, Bytes>> prev_pages;
  for (mem::PageId id = 0; id < 32; ++id)
    prev_pages.emplace_back(id, random_bytes(rng, kPageSize));
  mem::Snapshot prev = snapshot_of(prev_pages);

  // The current image memmoved every page up by 4 ids: page i now holds
  // what page i+4 held (pages 28..31 get fresh content).
  std::vector<Bytes> current(32);
  for (mem::PageId id = 0; id < 28; ++id)
    current[id] = prev_pages[id + 4].second;
  for (mem::PageId id = 28; id < 32; ++id)
    current[id] = random_bytes(rng, kPageSize);
  std::vector<DirtyPage> dirty;
  for (mem::PageId id = 0; id < 32; ++id)
    dirty.push_back({id, ByteSpan(current[id])});

  const PageAlignedCompressor correcting(
      PageAlignedCompressor::page_config(), /*correcting=*/true);
  const PageAlignedCompressor greedy(PageAlignedCompressor::page_config(),
                                     /*correcting=*/false);
  DeltaResult rc = correcting.compress(dirty, prev);
  DeltaResult rg = greedy.compress(dirty, prev);

  EXPECT_EQ(rc.pages_moved, 28u);
  EXPECT_EQ(rg.pages_moved, 0u);
  // Moved pages cost ~15 bytes each instead of 4 KiB raw: the payload must
  // be dominated by the 4 fresh pages only.
  EXPECT_LT(rc.payload.size(), 5 * kPageSize);
  EXPECT_GT(rg.payload.size(), 27 * kPageSize);  // greedy stores them raw

  // Both decode to the same image.
  mem::Snapshot outc = correcting.decompress(rc.payload, prev);
  mem::Snapshot outg = greedy.decompress(rg.payload, prev);
  for (mem::PageId id = 0; id < 32; ++id) {
    ASSERT_TRUE(std::equal(current[id].begin(), current[id].end(),
                           outc.page_bytes(id).begin()))
        << "page " << id;
    ASSERT_TRUE(std::equal(current[id].begin(), current[id].end(),
                           outg.page_bytes(id).begin()))
        << "page " << id;
  }
}

TEST(CorrectingPages, InPlaceDecompressMatchesOutOfPlace) {
  Rng rng(31);
  const PageAlignedCompressor compressor(
      PageAlignedCompressor::page_config(), /*correcting=*/true);
  // Accumulated state: 24 pages.
  std::vector<std::pair<mem::PageId, Bytes>> pages;
  for (mem::PageId id = 0; id < 24; ++id)
    pages.emplace_back(id, random_bytes(rng, kPageSize));

  for (int round = 0; round < 20; ++round) {
    mem::Snapshot prev = snapshot_of(pages);
    // Random churn: page swaps (cross moves both directions), in-page
    // edits, unchanged pages, and brand-new pages.
    std::vector<std::pair<mem::PageId, Bytes>> next = pages;
    const std::size_t a = rng.uniform_u64(next.size());
    const std::size_t b = rng.uniform_u64(next.size());
    std::swap(next[a].second, next[b].second);  // cycle when a != b
    for (int e = 0; e < 3; ++e) {
      Bytes& p = next[rng.uniform_u64(next.size())].second;
      const std::size_t len = 1 + rng.uniform_u64(512);
      const std::size_t from = rng.uniform_u64(kPageSize - len + 1);
      const std::size_t to = rng.uniform_u64(kPageSize - len + 1);
      std::memmove(p.data() + to, p.data() + from, len);
      p[rng.uniform_u64(kPageSize)] = std::uint8_t(rng());
    }
    if (rng.uniform_u64(2) == 0)
      next.emplace_back(mem::PageId(100 + round),
                        random_bytes(rng, kPageSize));

    // Dirty set = pages whose bytes differ from prev, plus new ones,
    // plus one guaranteed-same page (kKindSame coverage).
    std::vector<DirtyPage> dirty;
    for (const auto& [id, bytes] : next) {
      const bool in_prev = prev.contains(id);
      if (!in_prev || !std::equal(bytes.begin(), bytes.end(),
                                  prev.page_bytes(id).begin()) ||
          id == 0)
        dirty.push_back({id, ByteSpan(bytes)});
    }
    DeltaResult res = compressor.compress(dirty, prev);

    mem::Snapshot out_of_place = clone(prev);
    {
      mem::Snapshot decoded = compressor.decompress(res.payload, prev);
      decoded.overlay_onto(out_of_place);
    }
    mem::Snapshot in_place = clone(prev);
    compressor.decompress_in_place(res.payload, in_place);

    ASSERT_EQ(in_place.page_count(), out_of_place.page_count())
        << "round " << round;
    for (mem::PageId id : out_of_place.page_ids()) {
      ASSERT_TRUE(in_place.contains(id)) << "round " << round;
      ASSERT_TRUE(std::equal(out_of_place.page_bytes(id).begin(),
                             out_of_place.page_bytes(id).end(),
                             in_place.page_bytes(id).begin()))
          << "round " << round << " page " << id;
    }
    pages = std::move(next);
  }
}

TEST(CorrectingPages, InPlaceDecompressRejectsHostilePayloads) {
  Rng rng(41);
  const PageAlignedCompressor compressor(
      PageAlignedCompressor::page_config(), /*correcting=*/true);
  std::vector<std::pair<mem::PageId, Bytes>> pages;
  for (mem::PageId id = 0; id < 4; ++id)
    pages.emplace_back(id, random_bytes(rng, kPageSize));
  const mem::Snapshot prev = snapshot_of(pages);

  const auto payload = [&](auto build) {
    Bytes p;
    ByteWriter w(p);
    build(w);
    return p;
  };
  // Duplicate record for one page.
  {
    Bytes p = payload([&](ByteWriter& w) {
      w.varint(2);
      w.varint(1);
      w.u8(2);  // same
      w.varint(1);
      w.u8(2);  // same again
    });
    mem::Snapshot state = clone(prev);
    EXPECT_THROW(compressor.decompress_in_place(p, state), CheckError);
  }
  // Cross-move from a page that does not exist in the image.
  {
    Bytes p = payload([&](ByteWriter& w) {
      w.varint(1);
      w.varint(0);
      w.u8(3);        // cdelta
      w.varint(999);  // absent source
      w.varint(0);    // empty body (never reached)
    });
    mem::Snapshot state = clone(prev);
    EXPECT_THROW(compressor.decompress_in_place(p, state), CheckError);
  }
  // Record-count overflow bait.
  {
    Bytes p = payload([&](ByteWriter& w) { w.varint(~std::uint64_t{0}); });
    mem::Snapshot state = clone(prev);
    EXPECT_THROW(compressor.decompress_in_place(p, state), CheckError);
  }
  // Truncations of a real payload.
  {
    std::vector<DirtyPage> dirty;
    Bytes moved = Bytes(prev.page_bytes(1).begin(), prev.page_bytes(1).end());
    dirty.push_back({0, ByteSpan(moved)});
    DeltaResult res = compressor.compress(dirty, prev);
    for (std::size_t cut = 0; cut < res.payload.size(); ++cut) {
      Bytes torn(res.payload.begin(), res.payload.begin() + cut);
      mem::Snapshot state = clone(prev);
      EXPECT_THROW(compressor.decompress_in_place(torn, state), CheckError)
          << "cut=" << cut;
    }
  }
}

TEST(CorrectingPages, GreedyModeIsUnchanged) {
  // correcting=false must produce the exact payload the pre-v3 compressor
  // did: same kinds, no cdelta records, no MoveIndex effect.
  Rng rng(51);
  std::vector<std::pair<mem::PageId, Bytes>> pages;
  for (mem::PageId id = 0; id < 8; ++id)
    pages.emplace_back(id, random_bytes(rng, kPageSize));
  mem::Snapshot prev = snapshot_of(pages);
  std::vector<Bytes> current;
  for (mem::PageId id = 0; id < 8; ++id) {
    Bytes b = pages[id].second;
    if (id % 2 == 0) b[7] ^= 0xFF;
    current.push_back(std::move(b));
  }
  std::vector<DirtyPage> dirty;
  for (mem::PageId id = 0; id < 8; ++id)
    dirty.push_back({id, ByteSpan(current[id])});

  const PageAlignedCompressor greedy(PageAlignedCompressor::page_config());
  DeltaResult res = greedy.compress(dirty, prev);
  EXPECT_EQ(res.pages_moved, 0u);
  EXPECT_EQ(res.pages_same, 4u);
  // Payload contains no kind-3 bytes at record positions: decode with the
  // same compressor and also via in-place; both must agree.
  mem::Snapshot out = greedy.decompress(res.payload, prev);
  mem::Snapshot in_place = clone(prev);
  greedy.decompress_in_place(res.payload, in_place);
  for (mem::PageId id = 0; id < 8; ++id) {
    ASSERT_TRUE(std::equal(current[id].begin(), current[id].end(),
                           out.page_bytes(id).begin()));
    ASSERT_TRUE(std::equal(current[id].begin(), current[id].end(),
                           in_place.page_bytes(id).begin()));
  }
}

}  // namespace
}  // namespace aic::delta
