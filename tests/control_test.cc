// Tests for control/: the cost model's latency algebra, profiling, and the
// three experiment runners — including the paper's headline orderings
// (AIC <= SIC << Moody) on representative benchmarks.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/stats.h"
#include "control/experiment.h"

namespace aic::control {
namespace {

using workload::SpecBenchmark;

TEST(CostModel, DeltaParamsAlgebra) {
  CostModel costs;
  costs.local_bps = 100.0 * kMB;
  costs.compress_bps = 50.0 * kMB;
  costs.b2_bps = 10.0 * kGB;
  costs.b3_bps = 2.0 * kMB;
  const auto p = costs.delta_params(/*uncompressed=*/100'000'000,
                                    /*delta=*/10'000'000,
                                    /*work=*/200'000'000);
  EXPECT_DOUBLE_EQ(p.c1, 1.0);
  const double dl = 4.0;
  EXPECT_DOUBLE_EQ(p.c2, 1.0 + dl + 0.001);
  EXPECT_DOUBLE_EQ(p.c3, 1.0 + dl + 5.0);
  EXPECT_DOUBLE_EQ(p.r3, p.c3);
  EXPECT_LE(p.c1, p.c2);
  EXPECT_LE(p.c2, p.c3);
}

TEST(CostModel, RawParamsMonotone) {
  CostModel costs;
  const auto small = costs.raw_params(1'000'000);
  const auto large = costs.raw_params(100'000'000);
  EXPECT_LT(small.c1, large.c1);
  EXPECT_LT(small.c3, large.c3);
}

TEST(CostModel, PaperScaledPreservesTimeConstants) {
  // A full-footprint transfer at B3 should take the same ~537 s regardless
  // of the absolute footprint.
  for (std::uint64_t footprint : {64 * kMiB, 512 * kMiB, kGiB}) {
    const auto costs = CostModel::paper_scaled(footprint);
    const double c3_full = double(footprint) / costs.b3_bps;
    EXPECT_NEAR(c3_full, double(kGiB) / (2.0 * kMB), 1e-6);
  }
}

TEST(CostModel, RmsScalingShrinksB3Only) {
  CostModel base;
  const auto scaled = base.scaled_rms(4.0);
  EXPECT_DOUBLE_EQ(scaled.b3_bps, base.b3_bps / 4.0);
  EXPECT_DOUBLE_EQ(scaled.b2_bps, base.b2_bps);
  EXPECT_DOUBLE_EQ(scaled.local_bps, base.local_bps);
}

class ExperimentFixture : public ::testing::Test {
 protected:
  static ExperimentConfig config_for(SpecBenchmark b) {
    ExperimentConfig cfg;
    auto split = model::split_rate(1e-3);
    cfg.system.lambda = {split[0], split[1], split[2]};
    cfg.workload_scale = 0.125;  // small & fast for unit tests
    const auto prof = workload::spec_profile(b, cfg.workload_scale);
    cfg.costs = CostModel::paper_scaled(prof.footprint_pages * kPageSize);
    return cfg;
  }
};

TEST_F(ExperimentFixture, AicRunsAndRecordsIntervals) {
  auto cfg = config_for(SpecBenchmark::kBzip2);
  auto res = run_experiment(Scheme::kAic, SpecBenchmark::kBzip2, cfg);
  EXPECT_EQ(res.scheme, Scheme::kAic);
  EXPECT_EQ(res.workload, "bzip2");
  EXPECT_GT(res.intervals.size(), 0u);
  EXPECT_GT(res.net2, 1.0);
  EXPECT_LT(res.net2, 10.0);
  for (const auto& iv : res.intervals) {
    EXPECT_GT(iv.w, 0.0);
    EXPECT_LE(iv.params.c1, iv.params.c2);
    EXPECT_LE(iv.params.c2, iv.params.c3);
  }
}

TEST_F(ExperimentFixture, AicOverheadIsSmall) {
  // Table 3's claim: failure-free execution-time increase of a few percent.
  auto cfg = config_for(SpecBenchmark::kSjeng);
  auto res = run_experiment(Scheme::kAic, SpecBenchmark::kSjeng, cfg);
  EXPECT_GT(res.overhead_fraction(), 0.0);
  EXPECT_LT(res.overhead_fraction(), 0.06);
}

TEST_F(ExperimentFixture, SicUsesRoughlyFixedIntervals) {
  auto cfg = config_for(SpecBenchmark::kLibquantum);
  auto res = run_experiment(Scheme::kSic, SpecBenchmark::kLibquantum, cfg);
  ASSERT_GT(res.intervals.size(), 2u);
  // All spans except possibly the first should be within a couple of
  // decision periods + core-busy stretch of each other.
  std::vector<double> spans;
  for (const auto& iv : res.intervals) spans.push_back(iv.w);
  const double median = aic::percentile_of(spans, 0.5);
  int close = 0;
  for (double w : spans) close += (std::abs(w - median) < 0.5 * median);
  EXPECT_GE(close * 2, int(spans.size()));
}

TEST_F(ExperimentFixture, MoodyBlocksAndIsWorse) {
  auto cfg = config_for(SpecBenchmark::kMilc);
  auto aic = run_experiment(Scheme::kAic, SpecBenchmark::kMilc, cfg);
  auto moody = run_experiment(Scheme::kMoody, SpecBenchmark::kMilc, cfg);
  EXPECT_GT(moody.net2, aic.net2)
      << "concurrent checkpointing must beat blocking Moody";
  // (exec_time is not compared: with a wide Moody schedule the failure-free
  // run may block rarely — the expected-turnaround metric is what orders
  // the schemes.)
}

TEST_F(ExperimentFixture, AicBeatsOrMatchesSicOnSwingingBenchmarks) {
  for (auto b : {SpecBenchmark::kSjeng, SpecBenchmark::kMilc}) {
    auto cfg = config_for(b);
    auto aic = run_experiment(Scheme::kAic, b, cfg);
    auto sic = run_experiment(Scheme::kSic, b, cfg);
    EXPECT_LE(aic.net2, sic.net2 * 1.02)
        << to_string(b) << ": adaptive checkpointing lost to static";
  }
}

TEST_F(ExperimentFixture, ProfilingProducesOrderedCosts) {
  auto cfg = config_for(SpecBenchmark::kBzip2);
  auto prof = profile_workload(SpecBenchmark::kBzip2, cfg);
  EXPECT_GT(prof.incremental.c1, 0.0);
  EXPECT_LT(prof.incremental.c1, prof.incremental.c2);
  EXPECT_LT(prof.incremental.c2, prof.incremental.c3);
  // A full checkpoint moves the whole footprint; incrementals move less.
  EXPECT_GT(prof.full.c1, prof.incremental.c1);
  EXPECT_GT(prof.full.c3, prof.incremental.c3);
}

TEST_F(ExperimentFixture, DecisionHookFires) {
  auto cfg = config_for(SpecBenchmark::kSphinx3);
  int decisions = 0;
  int takes = 0;
  cfg.decision_hook = [&](const DecisionTrace& d) {
    ++decisions;
    takes += d.take;
    EXPECT_GE(d.elapsed, 0.0);
    EXPECT_GT(d.w_star, 0.0);
  };
  auto res = run_experiment(Scheme::kAic, SpecBenchmark::kSphinx3, cfg);
  EXPECT_GT(decisions, int(res.base_time / cfg.decision_period) / 2);
  EXPECT_GT(takes, 0);
}

TEST_F(ExperimentFixture, MeanAggregatesConsistent) {
  auto cfg = config_for(SpecBenchmark::kLbm);
  auto res = run_experiment(Scheme::kSic, SpecBenchmark::kLbm, cfg);
  EXPECT_GT(res.mean_delta_bytes(), 0.0);
  EXPECT_GT(res.mean_delta_latency(), 0.0);
  EXPECT_GT(res.mean_compression_ratio(), 0.0);
  EXPECT_LE(res.mean_compression_ratio(), 1.05);
}

TEST(Scheme, Names) {
  EXPECT_STREQ(to_string(Scheme::kAic), "AIC");
  EXPECT_STREQ(to_string(Scheme::kSic), "SIC");
  EXPECT_STREQ(to_string(Scheme::kMoody), "Moody");
}

}  // namespace
}  // namespace aic::control
