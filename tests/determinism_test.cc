// Determinism regression for the full simulation stack: a failure-sim run
// with the transfer engine is a pure function of its seed. Two runs with
// the same seed must agree on every virtual-time observable — recovered
// state, event counts, NET^2 — and a different seed must actually change
// the failure history (otherwise the "same" comparison proves nothing).
//
// Rationale: the drain engine, the failure injector, the delta pipeline,
// and the recovery path all share one virtual clock; any hidden host
// dependence (hash ordering, thread timing, uninitialized reads) shows up
// here as a diff between two identically-seeded runs.
#include <gtest/gtest.h>

#include "failure/failure.h"
#include "obs/export.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "sim/failure_sim.h"

namespace aic::sim {
namespace {

FailureSimConfig config_with_seed(std::uint64_t seed, obs::Hub* hub) {
  FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures = failure::FailureSpec::from_total(0.04);
  cfg.checkpoint_interval = 10.0;
  cfg.seed = seed;
  cfg.use_transfer_engine = true;
  cfg.obs = hub;
  return cfg;
}

/// Count of trace events on the virtual timeline (wall-clock spans repeat
/// in number but not duration; virtual events must repeat exactly).
std::size_t virtual_event_count(const obs::Hub& hub) {
  std::size_t n = 0;
  for (const auto& e : hub.trace.snapshot()) {
    n += (e.domain == obs::TimeDomain::kVirtual);
  }
  return n;
}

TEST(DeterminismTest, SameSeedReproducesTheRunExactly) {
  obs::Hub hub_a;
  const FailureSimResult a = run_failure_sim(config_with_seed(11, &hub_a));
  obs::Hub hub_b;
  const FailureSimResult b = run_failure_sim(config_with_seed(11, &hub_b));

  // Byte-identical recovered state: each run's final memory matched its
  // failure-free reference, so both runs ended in the same state.
  ASSERT_TRUE(a.final_state_verified);
  ASSERT_TRUE(b.final_state_verified);
  ASSERT_GT(a.total_failures(), 0) << "seed must inject failures";

  // Identical virtual-time outcome.
  EXPECT_DOUBLE_EQ(a.turnaround, b.turnaround);
  EXPECT_DOUBLE_EQ(a.base_time, b.base_time);
  EXPECT_DOUBLE_EQ(a.net2(), b.net2());
  EXPECT_EQ(a.failures_by_level, b.failures_by_level);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.drains_resumed, b.drains_resumed);

  // Identical transfer-engine event counts.
  EXPECT_EQ(a.xfer_stats.chunks_sent, b.xfer_stats.chunks_sent);
  EXPECT_EQ(a.xfer_stats.chunks_failed, b.xfer_stats.chunks_failed);
  EXPECT_EQ(a.xfer_stats.retries, b.xfer_stats.retries);
  EXPECT_EQ(a.xfer_stats.bytes_acked, b.xfer_stats.bytes_acked);

  // The observability layer sees the same run: every counter identical
  // (counters only record virtual-domain event counts and byte totals),
  // and the same number of virtual-timeline trace events.
  const auto snap_a = hub_a.metrics.snapshot();
  const auto snap_b = hub_b.metrics.snapshot();
  EXPECT_EQ(snap_a.counters, snap_b.counters);
  EXPECT_DOUBLE_EQ(snap_a.gauge_or(obs::names::kSimNet2, -1.0),
                   snap_b.gauge_or(obs::names::kSimNet2, -1.0));
  EXPECT_EQ(virtual_event_count(hub_a), virtual_event_count(hub_b));
  EXPECT_EQ(hub_a.trace.dropped(), hub_b.trace.dropped());
}

TEST(DeterminismTest, DifferentSeedDiverges) {
  const FailureSimResult a = run_failure_sim(config_with_seed(11, nullptr));
  const FailureSimResult b = run_failure_sim(config_with_seed(22, nullptr));
  ASSERT_TRUE(a.final_state_verified);
  ASSERT_TRUE(b.final_state_verified);
  // The failure histories must differ somewhere observable; turnaround
  // aggregates the whole timeline, so an exact tie across seeds would
  // mean the seed is not reaching the injector.
  EXPECT_FALSE(a.turnaround == b.turnaround &&
               a.failures_by_level == b.failures_by_level &&
               a.restores == b.restores)
      << "seeds 11 and 22 produced byte-identical runs";
}

}  // namespace
}  // namespace aic::sim
