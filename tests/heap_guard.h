// Binary-wide heap instrumentation for tests that assert on allocation
// behaviour: the obs overhead guard (hot paths must not allocate) and the
// in-place-restore memory guard (peak heap during restore must be about
// half of out-of-place).
//
// The global operator new/delete replacement lives in obs_test.cc — one
// definition per binary — and tracks, for every allocation in the test
// process: a count, the live byte total, and a high-water mark. Any test
// TU includes this header to read them. Byte sizes are taken from
// malloc_usable_size on both the allocate and free sides, so live_bytes
// is exact even though operator delete is not always sized.
//
// These counters are process-global and racy-by-design across threads
// (relaxed atomics): tests that assert on them must do their measured work
// single-threaded.
#pragma once

#include <cstdint>

namespace aic::testing {

struct HeapStats {
  std::uint64_t allocations = 0;
  std::uint64_t live_bytes = 0;
  /// High-water mark of live_bytes since process start or the last
  /// reset_heap_peak().
  std::uint64_t peak_bytes = 0;
};

HeapStats heap_stats();

/// Restarts the high-water mark from the current live total, so a test can
/// measure the peak of one region: reset, run, then read
/// heap_stats().peak_bytes - live-at-reset.
void reset_heap_peak();

}  // namespace aic::testing
