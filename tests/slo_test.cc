// Tests for the SLO/burn-rate engine (src/obs/slo.*) and its telemetry
// integration: the rule grammar and its round trip, threshold
// breach/recover edges, the multi-window burn-rate golden over a scripted
// degradation, the `fleet.slo.*` gauge publication through
// Telemetry::tick, and the flight-recorder postmortem's slo_events
// section. The TSan leg runs every SloTest.*.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace {

namespace on = aic::obs::names;
using aic::CheckError;
using aic::obs::Hub;
using aic::obs::parse_slo_rule;
using aic::obs::SloComparison;
using aic::obs::SloEngine;
using aic::obs::SloEvent;
using aic::obs::SloRule;
using aic::obs::SloStatus;
using aic::obs::Telemetry;
using aic::obs::TimeseriesStore;

TEST(SloTest, ParsesThresholdOnlyRule) {
  const SloRule r = parse_slo_rule("tts-p99: fleet.time_to_safe_seconds.p99 < 0.5");
  EXPECT_EQ(r.name, "tts-p99");
  EXPECT_EQ(r.series, "fleet.time_to_safe_seconds.p99");
  EXPECT_EQ(r.cmp, SloComparison::kLt);
  EXPECT_DOUBLE_EQ(r.threshold, 0.5);
  EXPECT_FALSE(r.burn_enabled());
  EXPECT_TRUE(r.good(0.4));
  EXPECT_FALSE(r.good(0.5));  // strict <
}

TEST(SloTest, ParsesFullGrammar) {
  const SloRule r = parse_slo_rule(
      "goodput: fleet.tenant.0.goodput_bps >= 9e7 budget 0.05 burn 60/600 x2");
  EXPECT_EQ(r.cmp, SloComparison::kGe);
  EXPECT_DOUBLE_EQ(r.threshold, 9e7);
  EXPECT_DOUBLE_EQ(r.error_budget, 0.05);
  EXPECT_DOUBLE_EQ(r.short_window_s, 60.0);
  EXPECT_DOUBLE_EQ(r.long_window_s, 600.0);
  EXPECT_DOUBLE_EQ(r.burn_factor, 2.0);
  EXPECT_TRUE(r.burn_enabled());
}

TEST(SloTest, RuleRoundTripsThroughText) {
  for (const char* text :
       {"a: s < 1", "b: s <= 2.5", "c: s > 3", "d: s >= 4 budget 0.1",
        "e: x.y.p99 < 0.5 budget 0.01 burn 30/300 x1.5"}) {
    const SloRule r = parse_slo_rule(text);
    const SloRule again = parse_slo_rule(to_string(r));
    EXPECT_EQ(again.name, r.name);
    EXPECT_EQ(again.series, r.series);
    EXPECT_EQ(again.cmp, r.cmp);
    EXPECT_DOUBLE_EQ(again.threshold, r.threshold);
    EXPECT_DOUBLE_EQ(again.error_budget, r.error_budget);
    EXPECT_DOUBLE_EQ(again.short_window_s, r.short_window_s);
    EXPECT_DOUBLE_EQ(again.long_window_s, r.long_window_s);
    EXPECT_DOUBLE_EQ(again.burn_factor, r.burn_factor);
  }
}

TEST(SloTest, MalformedRulesThrow) {
  for (const char* text :
       {"", "no-colon s < 1", "a: s ! 1", "a: s <", "a: s < notanumber",
        "a: s < 1 budget", "a: s < 1 burn 60 x2", "a: s < 1 burn 60/600",
        "a: s < 1 trailing garbage"}) {
    EXPECT_THROW(parse_slo_rule(text), CheckError) << "accepted: " << text;
  }
}

TEST(SloTest, BreachAndRecoverAreEdgeTriggered) {
  TimeseriesStore store;
  SloEngine engine;
  engine.add_rule("depth: q < 5");
  aic::obs::Series& s = store.series("q");

  s.push(1.0, 2.0);
  EXPECT_TRUE(engine.evaluate(store, 1.0).empty());  // good: no event

  s.push(2.0, 9.0);
  std::vector<SloEvent> ev = engine.evaluate(store, 2.0);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, SloEvent::Kind::kBreach);
  EXPECT_DOUBLE_EQ(ev[0].value, 9.0);

  s.push(3.0, 9.0);
  EXPECT_TRUE(engine.evaluate(store, 3.0).empty());  // still bad: no re-fire

  s.push(4.0, 1.0);
  ev = engine.evaluate(store, 4.0);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, SloEvent::Kind::kRecover);

  const std::vector<SloStatus> status = engine.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_TRUE(status[0].evaluated);
  EXPECT_FALSE(status[0].breached);
  EXPECT_EQ(status[0].breaches, 1u);
}

TEST(SloTest, AbsentSeriesIsSkippedNotBreached) {
  TimeseriesStore store;
  SloEngine engine;
  engine.add_rule("ghost: never.sampled < 1");
  EXPECT_TRUE(engine.evaluate(store, 1.0).empty());
  const std::vector<SloStatus> status = engine.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_FALSE(status[0].evaluated);
  EXPECT_FALSE(status[0].breached);
}

// Golden: a scripted degradation against "lat < 10 budget 0.25 burn 4/16
// x2". One sample per second; the first 20 s are good, then latency goes
// bad. The alert must fire only once BOTH windows burn at >= 2x budget
// (i.e. bad fraction >= 0.5), and clear after recovery drains the short
// window first.
TEST(SloTest, BurnRateGoldenOverScriptedDegradation) {
  TimeseriesStore store;
  SloEngine engine;
  engine.add_rule("lat: svc.lat < 10 budget 0.25 burn 4/16 x2");
  aic::obs::Series& s = store.series("svc.lat");

  std::vector<SloEvent> all;
  auto step = [&](double t, double v) {
    s.push(t, v);
    for (SloEvent& e : engine.evaluate(store, t)) all.push_back(e);
  };

  double t = 0.0;
  for (int i = 0; i < 20; ++i) step(t += 1.0, 1.0);   // healthy baseline
  EXPECT_TRUE(all.empty());

  for (int i = 0; i < 12; ++i) step(t += 1.0, 50.0);  // incident
  // Expect exactly one breach edge and one burn alert, in that order:
  // the breach fires on the first bad sample, the alert once the long
  // window's bad fraction reaches 0.5 (>= 8 of the trailing 16 s bad).
  ASSERT_GE(all.size(), 2u);
  EXPECT_EQ(all[0].kind, SloEvent::Kind::kBreach);
  EXPECT_EQ(all[1].kind, SloEvent::Kind::kBurnAlert);
  EXPECT_GE(all[1].t, 28.0);  // not before 8 bad seconds accumulated
  EXPECT_GE(all[1].burn_short, 2.0);
  EXPECT_GE(all[1].burn_long, 2.0);
  const std::size_t incident_events = all.size();

  for (int i = 0; i < 20; ++i) step(t += 1.0, 1.0);   // recovery
  // Recovery emits the recover edge and the burn clear, nothing else.
  ASSERT_EQ(all.size(), incident_events + 2);
  EXPECT_EQ(all[incident_events].kind, SloEvent::Kind::kRecover);
  EXPECT_EQ(all[incident_events + 1].kind, SloEvent::Kind::kBurnClear);
  // The short window (4 s) drains before the long (16 s) refills with
  // good samples; the clear lands once the short burn drops under 2x.
  EXPECT_LE(all[incident_events + 1].t, all[incident_events].t + 5.0);

  const std::vector<SloStatus> status = engine.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_FALSE(status[0].breached);
  EXPECT_FALSE(status[0].burning);
  EXPECT_EQ(status[0].breaches, 1u);
  EXPECT_EQ(status[0].burn_alerts, 1u);
}

TEST(SloTest, EventRingIsBounded) {
  TimeseriesStore store;
  SloEngine engine(4);
  engine.add_rule("flap: f < 1");
  aic::obs::Series& s = store.series("f");
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {  // 10 breach + 10 recover edges
    s.push(t += 1.0, 5.0);
    engine.evaluate(store, t);
    s.push(t += 1.0, 0.0);
    engine.evaluate(store, t);
  }
  EXPECT_EQ(engine.total_events(), 20u);
  const std::vector<SloEvent> kept = engine.events();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_LE(kept[i - 1].t, kept[i].t);  // oldest -> newest
  }
  EXPECT_DOUBLE_EQ(kept.back().t, 20.0);
}

TEST(SloTest, TelemetryTickPublishesSloGauges) {
  Hub hub;
  Telemetry& tel = hub.enable_telemetry();
  tel.slo().add_rule("depth: svc.q < 5 budget 0.5 burn 2/4 x1");
  aic::obs::Gauge* q = hub.metrics.gauge("svc.q");

  q->set(1.0);
  tel.tick(1.0);
  q->set(9.0);
  tel.tick(2.0);

  // The verdict lands back in the registry as fleet.slo.<rule>.* gauges
  // (so SLO health is itself sampled), plus the event counters.
  const auto snap = hub.metrics.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at(on::slo_metric("depth", on::kSloRuleOk)),
                   0.0);
  EXPECT_DOUBLE_EQ(
      snap.gauges.at(on::slo_metric("depth", on::kSloRuleValue)), 9.0);
  EXPECT_EQ(snap.counters.at(on::kSloBreaches), 1u);
  EXPECT_GE(snap.counters.at(on::kSloEvaluations), 2u);

  // And the trace log carries one "slo" instant per event. Compare by
  // content: the category is a const char* and literal addresses are not
  // merged across TUs in every build (ASan defeats -fmerge-constants).
  bool saw_slo_instant = false;
  for (const auto& e : hub.trace.snapshot()) {
    if (std::strcmp(e.category, on::kCatSlo) == 0) saw_slo_instant = true;
  }
  EXPECT_TRUE(saw_slo_instant);
}

TEST(SloTest, PostmortemCarriesSloEventTail) {
  Hub hub;
  aic::obs::FlightRecorder& rec = hub.enable_flight_recorder(64, "unused");
  Telemetry& tel = hub.enable_telemetry();
  tel.slo().add_rule("depth: svc.q < 5");
  aic::obs::Gauge* q = hub.metrics.gauge("svc.q");

  q->set(1.0);
  tel.tick(1.0);
  q->set(9.0);
  tel.tick(2.0);  // breach -> forwarded to the recorder's SLO ring

  ASSERT_EQ(rec.total_slo_recorded(), 1u);
  const std::vector<SloEvent> tail = rec.recent_slo();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].rule, "depth");
  EXPECT_EQ(tail[0].kind, SloEvent::Kind::kBreach);

  const std::string pm = rec.postmortem_json("test", "scripted breach");
  EXPECT_NE(pm.find("\"slo_events\""), std::string::npos);
  EXPECT_NE(pm.find("\"depth\""), std::string::npos);
  EXPECT_NE(pm.find("\"breach\""), std::string::npos);
  // The per-tenant gauge family rides along in the final-metrics section.
  hub.metrics.gauge(on::tenant_metric(3, on::kTenantGoodputBps))->set(5.0);
  const std::string pm2 = rec.postmortem_json("test", "with tenant gauge");
  EXPECT_NE(pm2.find("fleet.tenant.3.goodput_bps"), std::string::npos);
}

}  // namespace
