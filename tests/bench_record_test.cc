// BENCH_<target>.json schema: round-trips, writer-side validation, and the
// parser's hostile-input discipline (truncated/hand-edited files must
// throw, never misreport a benchmark run).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/check.h"
#include "obs/bench_record.h"

namespace aic::obs {
namespace {

BenchRecord sample_record() {
  BenchRecord rec = make_bench_record("fig_test", /*smoke=*/true);
  BenchMetric& m = rec.metric("net2.milc.aic", "net2");
  m.params["workload_scale"] = 0.25;
  m.samples = {1.31, 1.29, 1.33};
  BenchMetric& g = rec.metric("goodput", "B/s", /*higher_is_better=*/true);
  g.samples = {1e6};
  rec.checks.push_back({"concurrent beats Moody", true});
  rec.checks.push_back({"gap widens with size", false});
  return rec;
}

TEST(BenchRecord, FilenameIsCanonical) {
  EXPECT_EQ(bench_record_filename("fig11_netsq_benchmarks"),
            "BENCH_fig11_netsq_benchmarks.json");
}

TEST(BenchRecord, MetricIsGetOrCreate) {
  BenchRecord rec = make_bench_record("t", false);
  BenchMetric& a = rec.metric("m", "s");
  a.samples.push_back(1.0);
  BenchMetric& b = rec.metric("m", "ignored-on-revisit");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.unit, "s");
  EXPECT_EQ(rec.metrics.size(), 1u);
  EXPECT_EQ(rec.find("m"), &rec.metrics[0]);
  EXPECT_EQ(rec.find("absent"), nullptr);
}

TEST(BenchRecord, MedianAndIqr) {
  BenchMetric m;
  m.samples = {5.0, 1.0, 3.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(m.median(), 3.0);
  BenchMetric single;
  single.samples = {7.5};
  EXPECT_DOUBLE_EQ(single.median(), 7.5);
  EXPECT_DOUBLE_EQ(single.iqr(), 0.0);
  BenchMetric spread;
  spread.samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(spread.median(), 3.0);
  EXPECT_DOUBLE_EQ(spread.iqr(), 2.0);  // p75 - p25 = 4 - 2
}

TEST(BenchRecord, RoundTripPreservesEverything) {
  const BenchRecord rec = sample_record();
  const std::string json = bench_record_to_json(rec);
  const BenchRecord back = bench_record_from_json(json);

  EXPECT_EQ(back.target, "fig_test");
  EXPECT_TRUE(back.smoke);
  EXPECT_EQ(back.build.compiler, rec.build.compiler);
  EXPECT_EQ(back.build.git_sha, rec.build.git_sha);
  EXPECT_EQ(back.build.nproc, rec.build.nproc);

  ASSERT_EQ(back.checks.size(), 2u);
  EXPECT_EQ(back.checks[0].claim, "concurrent beats Moody");
  EXPECT_TRUE(back.checks[0].ok);
  EXPECT_FALSE(back.checks[1].ok);

  ASSERT_EQ(back.metrics.size(), 2u);
  const BenchMetric* m = back.find("net2.milc.aic");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->unit, "net2");
  EXPECT_FALSE(m->higher_is_better);
  ASSERT_EQ(m->samples.size(), 3u);
  EXPECT_DOUBLE_EQ(m->samples[1], 1.29);
  EXPECT_DOUBLE_EQ(m->params.at("workload_scale"), 0.25);
  const BenchMetric* g = back.find("goodput");
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->higher_is_better);
}

TEST(BenchRecord, WriterRejectsInvalidRecords) {
  BenchRecord no_target = make_bench_record("", false);
  EXPECT_THROW(bench_record_to_json(no_target), CheckError);

  BenchRecord empty_samples = make_bench_record("t", false);
  empty_samples.metric("m", "s");  // never sampled
  EXPECT_THROW(bench_record_to_json(empty_samples), CheckError);

  BenchRecord dup = make_bench_record("t", false);
  dup.metrics.push_back({"m", "s", false, {}, {1.0}});
  dup.metrics.push_back({"m", "s", false, {}, {2.0}});
  EXPECT_THROW(bench_record_to_json(dup), CheckError);

  BenchRecord nonfinite = make_bench_record("t", false);
  nonfinite.metric("m", "s").samples.push_back(std::nan(""));
  EXPECT_THROW(bench_record_to_json(nonfinite), CheckError);
}

TEST(BenchRecord, ParserRejectsHostileInput) {
  const std::string good = bench_record_to_json(sample_record());

  // Truncation at any meaningful boundary must throw, not misparse.
  EXPECT_THROW(bench_record_from_json(""), CheckError);
  EXPECT_THROW(bench_record_from_json(good.substr(0, good.size() / 2)),
               CheckError);
  EXPECT_THROW(bench_record_from_json(good.substr(0, good.size() - 1)),
               CheckError);
  // Trailing garbage.
  EXPECT_THROW(bench_record_from_json(good + "x"), CheckError);

  // Wrong or missing schema tag.
  EXPECT_THROW(bench_record_from_json(R"({"schema":"aic-bench-v0"})"),
               CheckError);
  EXPECT_THROW(bench_record_from_json(R"({"target":"t"})"), CheckError);

  // Structurally wrong field types.
  EXPECT_THROW(bench_record_from_json(
                   R"({"schema":"aic-bench-v1","target":7,"smoke":false,)"
                   R"("build":{},"checks":[],"metrics":[]})"),
               CheckError);
  EXPECT_THROW(
      bench_record_from_json(
          R"({"schema":"aic-bench-v1","target":"t","smoke":false,)"
          R"("build":{"git_sha":"","compiler":"","build_type":"",)"
          R"("sanitizer":"","nproc":1},"checks":[],)"
          R"("metrics":[{"name":"m","unit":"s","higher_is_better":false,)"
          R"("params":{},"samples":"not-an-array"}]})"),
      CheckError);
  // Metric with an empty sample list.
  EXPECT_THROW(
      bench_record_from_json(
          R"({"schema":"aic-bench-v1","target":"t","smoke":false,)"
          R"("build":{"git_sha":"","compiler":"","build_type":"",)"
          R"("sanitizer":"","nproc":1},"checks":[],)"
          R"("metrics":[{"name":"m","unit":"s","higher_is_better":false,)"
          R"("params":{},"samples":[]}]})"),
      CheckError);
}

TEST(BenchRecord, BuildProvenanceComparability) {
  BuildInfo a;
  a.compiler = "gcc 12";
  a.build_type = "Release";
  a.sanitizer = "";
  BuildInfo b = a;
  EXPECT_TRUE(a.comparable_to(b));
  b.sanitizer = "address";
  EXPECT_FALSE(a.comparable_to(b));
  b = a;
  b.git_sha = "different-sha";  // different commit is still comparable
  EXPECT_TRUE(a.comparable_to(b));
}

}  // namespace
}  // namespace aic::obs
