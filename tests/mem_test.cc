// Unit tests for mem/: the simulated address space (write-protection dirty
// tracking, the BLCR/mprotect stand-in) and snapshots.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "mem/address_space.h"
#include "mem/snapshot.h"

namespace aic::mem {
namespace {

Bytes make_bytes(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::uint8_t(seed + i);
  return b;
}

TEST(AddressSpace, AllocateStartsZeroedAndDirty) {
  AddressSpace s;
  s.allocate(5);
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.page_count(), 1u);
  EXPECT_TRUE(s.is_dirty(5));
  for (auto b : s.page_bytes(5)) ASSERT_EQ(b, 0);
}

TEST(AddressSpace, DoubleAllocateThrows) {
  AddressSpace s;
  s.allocate(1);
  EXPECT_THROW(s.allocate(1), CheckError);
}

TEST(AddressSpace, FreeRemovesPage) {
  AddressSpace s;
  s.allocate(1);
  s.free_page(1);
  EXPECT_FALSE(s.contains(1));
  EXPECT_THROW(s.free_page(1), CheckError);
  EXPECT_THROW((void)s.page_bytes(1), CheckError);
}

TEST(AddressSpace, WriteReadRoundTrip) {
  AddressSpace s;
  s.allocate(3);
  Bytes data = make_bytes(100, 7);
  s.write(3, 50, data);
  auto view = s.page_bytes(3);
  EXPECT_EQ(0, std::memcmp(view.data() + 50, data.data(), data.size()));
  EXPECT_EQ(view[49], 0);
  EXPECT_EQ(view[150], 0);
}

TEST(AddressSpace, WritePastPageEndThrows) {
  AddressSpace s;
  s.allocate(0);
  Bytes data(10);
  EXPECT_THROW(s.write(0, kPageSize - 5, data), CheckError);
}

TEST(AddressSpace, ProtectAllClearsDirtyAndArmsFaults) {
  AddressSpace s;
  s.allocate_range(0, 4);
  s.protect_all();
  EXPECT_EQ(s.dirty_page_count(), 0u);

  std::vector<PageId> faults;
  s.set_fault_observer([&](PageId id) { faults.push_back(id); });

  Bytes data = make_bytes(8, 1);
  s.write(2, 0, data);
  s.write(2, 16, data);  // second write: no new fault
  s.write(0, 0, data);

  EXPECT_EQ(s.dirty_pages(), (std::vector<PageId>{0, 2}));
  EXPECT_EQ(faults, (std::vector<PageId>{2, 0}));
  EXPECT_EQ(s.fault_count(), 2u);
}

TEST(AddressSpace, AllocationAfterProtectIsDirtyButNotAFault) {
  AddressSpace s;
  s.allocate(0);
  s.protect_all();
  int faults = 0;
  s.set_fault_observer([&](PageId) { ++faults; });
  s.allocate(9);
  EXPECT_TRUE(s.is_dirty(9));
  // A fresh page was never protected, so no fault fires; it is simply dirty.
  EXPECT_EQ(faults, 0);
}

TEST(AddressSpace, MutateMarksDirty) {
  AddressSpace s;
  s.allocate(4);
  s.protect_all();
  s.mutate(4, [](std::span<std::uint8_t> bytes) { bytes[0] = 0xFF; });
  EXPECT_TRUE(s.is_dirty(4));
  EXPECT_EQ(s.page_bytes(4)[0], 0xFF);
}

TEST(AddressSpace, LivePagesSorted) {
  AddressSpace s;
  for (PageId id : {9, 2, 5, 1}) s.allocate(id);
  EXPECT_EQ(s.live_pages(), (std::vector<PageId>{1, 2, 5, 9}));
  EXPECT_EQ(s.footprint_bytes(), 4 * kPageSize);
}

TEST(Snapshot, CaptureEqualsSpace) {
  AddressSpace s;
  Rng rng(1);
  s.allocate_range(0, 8);
  for (PageId id = 0; id < 8; ++id) {
    s.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  Snapshot snap = Snapshot::capture(s);
  EXPECT_TRUE(snap.equals_space(s));
  EXPECT_EQ(snap.page_count(), 8u);
}

TEST(Snapshot, IndependentOfLaterMutation) {
  AddressSpace s;
  s.allocate(0);
  s.write(0, 0, make_bytes(4, 1));
  Snapshot snap = Snapshot::capture(s);
  s.write(0, 0, make_bytes(4, 99));
  EXPECT_EQ(snap.page_bytes(0)[0], 1);
  EXPECT_FALSE(snap.equals_space(s));
}

TEST(Snapshot, CapturePagesSubset) {
  AddressSpace s;
  s.allocate_range(0, 4);
  Snapshot snap = Snapshot::capture_pages(s, {1, 3});
  EXPECT_TRUE(snap.contains(1));
  EXPECT_TRUE(snap.contains(3));
  EXPECT_FALSE(snap.contains(0));
  EXPECT_THROW((void)snap.page_bytes(0), CheckError);
}

TEST(Snapshot, OverlayLaterWins) {
  AddressSpace s;
  s.allocate_range(0, 2);
  s.write(0, 0, make_bytes(4, 1));
  s.write(1, 0, make_bytes(4, 2));
  Snapshot base = Snapshot::capture(s);

  s.write(1, 0, make_bytes(4, 50));
  Snapshot inc = Snapshot::capture_pages(s, {1});
  inc.overlay_onto(base);

  EXPECT_EQ(base.page_bytes(0)[0], 1);
  EXPECT_EQ(base.page_bytes(1)[0], 50);
}

TEST(Snapshot, MaterializeRoundTrip) {
  AddressSpace s;
  Rng rng(2);
  for (PageId id : {3, 7, 11}) {
    s.allocate(id);
    s.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  Snapshot snap = Snapshot::capture(s);
  AddressSpace rebuilt = snap.materialize();
  EXPECT_TRUE(snap.equals_space(rebuilt));
  EXPECT_EQ(rebuilt.live_pages(), s.live_pages());
}

TEST(Snapshot, EqualsSpaceDetectsPageCountMismatch) {
  AddressSpace s;
  s.allocate(0);
  Snapshot snap = Snapshot::capture(s);
  s.allocate(1);
  EXPECT_FALSE(snap.equals_space(s));
}

// Property: for a random interleaving of writes/allocations/frees, the dirty
// set after protect_all contains exactly the touched live pages.
TEST(AddressSpace, PropertyDirtySetMatchesTouchedPages) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    AddressSpace s;
    const PageId universe = 64;
    s.allocate_range(0, universe);
    s.protect_all();
    std::vector<bool> touched(universe, false);
    Bytes data = make_bytes(16, 3);
    for (int op = 0; op < 200; ++op) {
      PageId id = rng.uniform_u64(universe);
      if (!s.contains(id)) continue;
      int what = int(rng.uniform_u64(10));
      if (what == 0) {
        s.free_page(id);
        touched[id] = false;  // freed pages can't stay dirty
      } else {
        s.write(id, rng.uniform_u64(kPageSize - 16), data);
        touched[id] = true;
      }
    }
    std::vector<PageId> expected;
    for (PageId id = 0; id < universe; ++id)
      if (touched[id] && s.contains(id)) expected.push_back(id);
    EXPECT_EQ(s.dirty_pages(), expected);
  }
}

}  // namespace
}  // namespace aic::mem
