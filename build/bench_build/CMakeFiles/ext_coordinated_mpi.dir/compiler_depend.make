# Empty compiler generated dependencies file for ext_coordinated_mpi.
# This may be replaced when dependencies are built.
