file(REMOVE_RECURSE
  "../bench/ext_coordinated_mpi"
  "../bench/ext_coordinated_mpi.pdb"
  "CMakeFiles/ext_coordinated_mpi.dir/ext_coordinated_mpi.cc.o"
  "CMakeFiles/ext_coordinated_mpi.dir/ext_coordinated_mpi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_coordinated_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
