file(REMOVE_RECURSE
  "../bench/ablation_decider"
  "../bench/ablation_decider.pdb"
  "CMakeFiles/ablation_decider.dir/ablation_decider.cc.o"
  "CMakeFiles/ablation_decider.dir/ablation_decider.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
