# Empty compiler generated dependencies file for ablation_decider.
# This may be replaced when dependencies are built.
