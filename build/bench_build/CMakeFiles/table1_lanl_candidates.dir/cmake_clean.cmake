file(REMOVE_RECURSE
  "../bench/table1_lanl_candidates"
  "../bench/table1_lanl_candidates.pdb"
  "CMakeFiles/table1_lanl_candidates.dir/table1_lanl_candidates.cc.o"
  "CMakeFiles/table1_lanl_candidates.dir/table1_lanl_candidates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lanl_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
