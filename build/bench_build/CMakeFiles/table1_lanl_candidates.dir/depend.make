# Empty dependencies file for table1_lanl_candidates.
# This may be replaced when dependencies are built.
