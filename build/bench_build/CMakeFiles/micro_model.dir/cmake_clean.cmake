file(REMOVE_RECURSE
  "../bench/micro_model"
  "../bench/micro_model.pdb"
  "CMakeFiles/micro_model.dir/micro_model.cc.o"
  "CMakeFiles/micro_model.dir/micro_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
