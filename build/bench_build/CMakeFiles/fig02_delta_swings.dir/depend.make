# Empty dependencies file for fig02_delta_swings.
# This may be replaced when dependencies are built.
