file(REMOVE_RECURSE
  "../bench/fig02_delta_swings"
  "../bench/fig02_delta_swings.pdb"
  "CMakeFiles/fig02_delta_swings.dir/fig02_delta_swings.cc.o"
  "CMakeFiles/fig02_delta_swings.dir/fig02_delta_swings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_delta_swings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
