# Empty dependencies file for ablation_sample_buffer.
# This may be replaced when dependencies are built.
