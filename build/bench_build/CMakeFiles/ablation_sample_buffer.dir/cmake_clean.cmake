file(REMOVE_RECURSE
  "../bench/ablation_sample_buffer"
  "../bench/ablation_sample_buffer.pdb"
  "CMakeFiles/ablation_sample_buffer.dir/ablation_sample_buffer.cc.o"
  "CMakeFiles/ablation_sample_buffer.dir/ablation_sample_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sample_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
