# Empty dependencies file for fig12_milc_scaling.
# This may be replaced when dependencies are built.
