file(REMOVE_RECURSE
  "../bench/fig12_milc_scaling"
  "../bench/fig12_milc_scaling.pdb"
  "CMakeFiles/fig12_milc_scaling.dir/fig12_milc_scaling.cc.o"
  "CMakeFiles/fig12_milc_scaling.dir/fig12_milc_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_milc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
