file(REMOVE_RECURSE
  "../bench/model_vs_simulation"
  "../bench/model_vs_simulation.pdb"
  "CMakeFiles/model_vs_simulation.dir/model_vs_simulation.cc.o"
  "CMakeFiles/model_vs_simulation.dir/model_vs_simulation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_vs_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
