file(REMOVE_RECURSE
  "../bench/fig07_sharing_factor"
  "../bench/fig07_sharing_factor.pdb"
  "CMakeFiles/fig07_sharing_factor.dir/fig07_sharing_factor.cc.o"
  "CMakeFiles/fig07_sharing_factor.dir/fig07_sharing_factor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sharing_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
