# Empty compiler generated dependencies file for fig07_sharing_factor.
# This may be replaced when dependencies are built.
