file(REMOVE_RECURSE
  "../bench/fig05_pf3d_netsq"
  "../bench/fig05_pf3d_netsq.pdb"
  "CMakeFiles/fig05_pf3d_netsq.dir/fig05_pf3d_netsq.cc.o"
  "CMakeFiles/fig05_pf3d_netsq.dir/fig05_pf3d_netsq.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_pf3d_netsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
