# Empty compiler generated dependencies file for fig05_pf3d_netsq.
# This may be replaced when dependencies are built.
