file(REMOVE_RECURSE
  "../bench/fig11_netsq_benchmarks"
  "../bench/fig11_netsq_benchmarks.pdb"
  "CMakeFiles/fig11_netsq_benchmarks.dir/fig11_netsq_benchmarks.cc.o"
  "CMakeFiles/fig11_netsq_benchmarks.dir/fig11_netsq_benchmarks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_netsq_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
