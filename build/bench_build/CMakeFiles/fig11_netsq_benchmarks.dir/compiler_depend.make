# Empty compiler generated dependencies file for fig11_netsq_benchmarks.
# This may be replaced when dependencies are built.
