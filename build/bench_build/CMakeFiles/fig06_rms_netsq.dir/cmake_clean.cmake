file(REMOVE_RECURSE
  "../bench/fig06_rms_netsq"
  "../bench/fig06_rms_netsq.pdb"
  "CMakeFiles/fig06_rms_netsq.dir/fig06_rms_netsq.cc.o"
  "CMakeFiles/fig06_rms_netsq.dir/fig06_rms_netsq.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_rms_netsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
