# Empty compiler generated dependencies file for fig06_rms_netsq.
# This may be replaced when dependencies are built.
