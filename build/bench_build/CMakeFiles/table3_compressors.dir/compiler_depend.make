# Empty compiler generated dependencies file for table3_compressors.
# This may be replaced when dependencies are built.
