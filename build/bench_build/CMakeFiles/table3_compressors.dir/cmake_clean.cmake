file(REMOVE_RECURSE
  "../bench/table3_compressors"
  "../bench/table3_compressors.pdb"
  "CMakeFiles/table3_compressors.dir/table3_compressors.cc.o"
  "CMakeFiles/table3_compressors.dir/table3_compressors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_compressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
