# Empty compiler generated dependencies file for aic_tests.
# This may be replaced when dependencies are built.
