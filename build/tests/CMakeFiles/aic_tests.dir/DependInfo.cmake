
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/async_test.cc" "tests/CMakeFiles/aic_tests.dir/async_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/async_test.cc.o.d"
  "/root/repo/tests/ckpt_test.cc" "tests/CMakeFiles/aic_tests.dir/ckpt_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/ckpt_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/aic_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/control_test.cc" "tests/CMakeFiles/aic_tests.dir/control_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/control_test.cc.o.d"
  "/root/repo/tests/coordinated_test.cc" "tests/CMakeFiles/aic_tests.dir/coordinated_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/coordinated_test.cc.o.d"
  "/root/repo/tests/delta_test.cc" "tests/CMakeFiles/aic_tests.dir/delta_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/delta_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/aic_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/aic_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/multilevel_store_test.cc" "tests/CMakeFiles/aic_tests.dir/multilevel_store_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/multilevel_store_test.cc.o.d"
  "/root/repo/tests/predictor_test.cc" "tests/CMakeFiles/aic_tests.dir/predictor_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/predictor_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/aic_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/aic_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/aic_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/aic_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/aic_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/aic_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
