# Empty dependencies file for example_multilevel_storage.
# This may be replaced when dependencies are built.
