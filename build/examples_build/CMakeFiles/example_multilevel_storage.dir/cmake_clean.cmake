file(REMOVE_RECURSE
  "../examples/example_multilevel_storage"
  "../examples/example_multilevel_storage.pdb"
  "CMakeFiles/example_multilevel_storage.dir/multilevel_storage.cc.o"
  "CMakeFiles/example_multilevel_storage.dir/multilevel_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multilevel_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
