file(REMOVE_RECURSE
  "../examples/example_delta_compress_tool"
  "../examples/example_delta_compress_tool.pdb"
  "CMakeFiles/example_delta_compress_tool.dir/delta_compress_tool.cc.o"
  "CMakeFiles/example_delta_compress_tool.dir/delta_compress_tool.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_delta_compress_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
