# Empty dependencies file for example_delta_compress_tool.
# This may be replaced when dependencies are built.
