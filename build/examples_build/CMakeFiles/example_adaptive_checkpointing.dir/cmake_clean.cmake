file(REMOVE_RECURSE
  "../examples/example_adaptive_checkpointing"
  "../examples/example_adaptive_checkpointing.pdb"
  "CMakeFiles/example_adaptive_checkpointing.dir/adaptive_checkpointing.cc.o"
  "CMakeFiles/example_adaptive_checkpointing.dir/adaptive_checkpointing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
