# Empty compiler generated dependencies file for example_adaptive_checkpointing.
# This may be replaced when dependencies are built.
