file(REMOVE_RECURSE
  "../examples/example_model_explorer"
  "../examples/example_model_explorer.pdb"
  "CMakeFiles/example_model_explorer.dir/model_explorer.cc.o"
  "CMakeFiles/example_model_explorer.dir/model_explorer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
