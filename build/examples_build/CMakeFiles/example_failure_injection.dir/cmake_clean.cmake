file(REMOVE_RECURSE
  "../examples/example_failure_injection"
  "../examples/example_failure_injection.pdb"
  "CMakeFiles/example_failure_injection.dir/failure_injection.cc.o"
  "CMakeFiles/example_failure_injection.dir/failure_injection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failure_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
