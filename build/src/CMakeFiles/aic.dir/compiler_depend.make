# Empty compiler generated dependencies file for aic.
# This may be replaced when dependencies are built.
