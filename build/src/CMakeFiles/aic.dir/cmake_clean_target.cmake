file(REMOVE_RECURSE
  "libaic.a"
)
