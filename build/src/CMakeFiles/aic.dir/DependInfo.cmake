
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/async_checkpointer.cc" "src/CMakeFiles/aic.dir/ckpt/async_checkpointer.cc.o" "gcc" "src/CMakeFiles/aic.dir/ckpt/async_checkpointer.cc.o.d"
  "/root/repo/src/ckpt/checkpoint_file.cc" "src/CMakeFiles/aic.dir/ckpt/checkpoint_file.cc.o" "gcc" "src/CMakeFiles/aic.dir/ckpt/checkpoint_file.cc.o.d"
  "/root/repo/src/ckpt/checkpointer.cc" "src/CMakeFiles/aic.dir/ckpt/checkpointer.cc.o" "gcc" "src/CMakeFiles/aic.dir/ckpt/checkpointer.cc.o.d"
  "/root/repo/src/common/linalg.cc" "src/CMakeFiles/aic.dir/common/linalg.cc.o" "gcc" "src/CMakeFiles/aic.dir/common/linalg.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/aic.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/aic.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/aic.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/aic.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/aic.dir/common/table.cc.o" "gcc" "src/CMakeFiles/aic.dir/common/table.cc.o.d"
  "/root/repo/src/control/coordinated.cc" "src/CMakeFiles/aic.dir/control/coordinated.cc.o" "gcc" "src/CMakeFiles/aic.dir/control/coordinated.cc.o.d"
  "/root/repo/src/control/experiment.cc" "src/CMakeFiles/aic.dir/control/experiment.cc.o" "gcc" "src/CMakeFiles/aic.dir/control/experiment.cc.o.d"
  "/root/repo/src/delta/page_delta.cc" "src/CMakeFiles/aic.dir/delta/page_delta.cc.o" "gcc" "src/CMakeFiles/aic.dir/delta/page_delta.cc.o.d"
  "/root/repo/src/delta/rolling_hash.cc" "src/CMakeFiles/aic.dir/delta/rolling_hash.cc.o" "gcc" "src/CMakeFiles/aic.dir/delta/rolling_hash.cc.o.d"
  "/root/repo/src/delta/xdelta3.cc" "src/CMakeFiles/aic.dir/delta/xdelta3.cc.o" "gcc" "src/CMakeFiles/aic.dir/delta/xdelta3.cc.o.d"
  "/root/repo/src/delta/xor_delta.cc" "src/CMakeFiles/aic.dir/delta/xor_delta.cc.o" "gcc" "src/CMakeFiles/aic.dir/delta/xor_delta.cc.o.d"
  "/root/repo/src/failure/failure.cc" "src/CMakeFiles/aic.dir/failure/failure.cc.o" "gcc" "src/CMakeFiles/aic.dir/failure/failure.cc.o.d"
  "/root/repo/src/mem/address_space.cc" "src/CMakeFiles/aic.dir/mem/address_space.cc.o" "gcc" "src/CMakeFiles/aic.dir/mem/address_space.cc.o.d"
  "/root/repo/src/mem/snapshot.cc" "src/CMakeFiles/aic.dir/mem/snapshot.cc.o" "gcc" "src/CMakeFiles/aic.dir/mem/snapshot.cc.o.d"
  "/root/repo/src/model/exp_math.cc" "src/CMakeFiles/aic.dir/model/exp_math.cc.o" "gcc" "src/CMakeFiles/aic.dir/model/exp_math.cc.o.d"
  "/root/repo/src/model/interval_models.cc" "src/CMakeFiles/aic.dir/model/interval_models.cc.o" "gcc" "src/CMakeFiles/aic.dir/model/interval_models.cc.o.d"
  "/root/repo/src/model/markov_chain.cc" "src/CMakeFiles/aic.dir/model/markov_chain.cc.o" "gcc" "src/CMakeFiles/aic.dir/model/markov_chain.cc.o.d"
  "/root/repo/src/model/moody.cc" "src/CMakeFiles/aic.dir/model/moody.cc.o" "gcc" "src/CMakeFiles/aic.dir/model/moody.cc.o.d"
  "/root/repo/src/model/optimizer.cc" "src/CMakeFiles/aic.dir/model/optimizer.cc.o" "gcc" "src/CMakeFiles/aic.dir/model/optimizer.cc.o.d"
  "/root/repo/src/model/system_profile.cc" "src/CMakeFiles/aic.dir/model/system_profile.cc.o" "gcc" "src/CMakeFiles/aic.dir/model/system_profile.cc.o.d"
  "/root/repo/src/predictor/features.cc" "src/CMakeFiles/aic.dir/predictor/features.cc.o" "gcc" "src/CMakeFiles/aic.dir/predictor/features.cc.o.d"
  "/root/repo/src/predictor/hot_page_sampler.cc" "src/CMakeFiles/aic.dir/predictor/hot_page_sampler.cc.o" "gcc" "src/CMakeFiles/aic.dir/predictor/hot_page_sampler.cc.o.d"
  "/root/repo/src/predictor/metrics.cc" "src/CMakeFiles/aic.dir/predictor/metrics.cc.o" "gcc" "src/CMakeFiles/aic.dir/predictor/metrics.cc.o.d"
  "/root/repo/src/predictor/predictor.cc" "src/CMakeFiles/aic.dir/predictor/predictor.cc.o" "gcc" "src/CMakeFiles/aic.dir/predictor/predictor.cc.o.d"
  "/root/repo/src/predictor/regression.cc" "src/CMakeFiles/aic.dir/predictor/regression.cc.o" "gcc" "src/CMakeFiles/aic.dir/predictor/regression.cc.o.d"
  "/root/repo/src/sim/chain_sim.cc" "src/CMakeFiles/aic.dir/sim/chain_sim.cc.o" "gcc" "src/CMakeFiles/aic.dir/sim/chain_sim.cc.o.d"
  "/root/repo/src/sim/failure_sim.cc" "src/CMakeFiles/aic.dir/sim/failure_sim.cc.o" "gcc" "src/CMakeFiles/aic.dir/sim/failure_sim.cc.o.d"
  "/root/repo/src/storage/multilevel_store.cc" "src/CMakeFiles/aic.dir/storage/multilevel_store.cc.o" "gcc" "src/CMakeFiles/aic.dir/storage/multilevel_store.cc.o.d"
  "/root/repo/src/storage/storage.cc" "src/CMakeFiles/aic.dir/storage/storage.cc.o" "gcc" "src/CMakeFiles/aic.dir/storage/storage.cc.o.d"
  "/root/repo/src/trace/lanl_trace.cc" "src/CMakeFiles/aic.dir/trace/lanl_trace.cc.o" "gcc" "src/CMakeFiles/aic.dir/trace/lanl_trace.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/aic.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/aic.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
